"""Aggregation of campaign records into the paper's analysis machinery.

Campaign records are flat dicts (``params`` + ``result``); this module
groups them along swept parameters and pushes the grouped metrics through
:mod:`repro.analysis.stats` / :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.tables`, so the tables the benchmarks print over
dozens of in-process runs can be reproduced over thousands of stored ones.

Two aggregation paths share one semantics:

* the *materialised* path (:func:`campaign_table`) holds every record in
  memory — fine for bench-sized campaigns;
* the *streaming* path (:func:`streaming_campaign_table`) consumes records
  one at a time through :class:`RunningMoments` (Welford count/mean/M2)
  and a deterministic :class:`QuantileSketch`, so a report over a 10⁵-run
  store holds per-group state, never the records.  Below the sketch
  capacity the streaming path retains the exact sample and computes
  through the same :func:`~repro.analysis.stats.summarise`, so its tables
  are *bit-identical* to the materialised ones; past capacity it degrades
  gracefully to Welford moments and sketch quantiles (still deterministic:
  the sketch compacts by parity, never randomness).
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)
from types import SimpleNamespace

from repro.analysis.metrics import SafetyOutcome, aggregate_outcomes
from repro.analysis.stats import Summary, summarise
from repro.analysis.tables import Table
from repro.campaign.registry import CampaignError
from repro.campaign.spec import axis_id_value

GroupKey = Tuple[Any, ...]

STATISTICS = ("mean", "median", "min", "max", "std")


def _lookup(record: Mapping[str, Any], key: str) -> Any:
    """A grouping key may live in the params, the result, or the record itself.

    Structured values (dict/list axes such as a swept ``topology``) are
    rendered through :func:`~repro.campaign.spec.axis_id_value`, so group
    keys stay hashable and tables show the same content digest the run ids
    carry; scalar values pass through unchanged.
    """
    for source in (record.get("params", {}), record.get("result", {}), record):
        if key in source:
            value = source[key]
            if isinstance(value, (dict, list)):
                return axis_id_value(value)
            return value
    raise CampaignError(f"record {record.get('run_id')!r} has no field {key!r}")


def group_records(
    records: Iterable[Mapping[str, Any]],
    by: Sequence[str],
) -> Dict[GroupKey, List[Mapping[str, Any]]]:
    """Group records by the values of the ``by`` fields (insertion-ordered)."""
    groups: Dict[GroupKey, List[Mapping[str, Any]]] = {}
    for record in records:
        key = tuple(_lookup(record, field) for field in by)
        groups.setdefault(key, []).append(record)
    return groups


def metric_values(records: Iterable[Mapping[str, Any]], metric: str) -> List[float]:
    """The numeric values of one result metric across records (None skipped)."""
    values = []
    for record in records:
        value = record["result"].get(metric)
        if value is None:
            continue
        if isinstance(value, bool):
            value = 1.0 if value else 0.0
        if not isinstance(value, (int, float)):
            raise CampaignError(f"result field {metric!r} is not numeric: {value!r}")
        values.append(float(value))
    return values


def summarise_metric(
    records: Iterable[Mapping[str, Any]], metric: str
) -> Summary:
    """Five-number summary of one result metric across records."""
    return summarise(metric_values(records, metric))


def campaign_table(
    records: Sequence[Mapping[str, Any]],
    *,
    group_by: Sequence[str],
    metrics: Sequence[str],
    title: str = "campaign summary",
    statistic: str = "mean",
    notes: Optional[str] = None,
) -> Table:
    """Summary table: one row per group, one column per metric statistic."""
    if statistic not in STATISTICS:
        raise CampaignError(f"unknown statistic {statistic!r}")
    columns = list(group_by) + ["runs"] + [f"{statistic}_{metric}" for metric in metrics]
    table = Table(title, columns, notes=notes)
    for key, group in group_records(records, group_by).items():
        row: List[Any] = list(key) + [len(group)]
        for metric in metrics:
            values = metric_values(group, metric)
            if not values:
                row.append(float("nan"))
                continue
            summary = summarise(values)
            row.append(
                {
                    "mean": summary.mean,
                    "median": summary.median,
                    "min": summary.minimum,
                    "max": summary.maximum,
                    "std": summary.std,
                }[statistic]
            )
        table.add_row(*row)
    return table


def safety_outcomes(
    records: Sequence[Mapping[str, Any]],
    *,
    group_by: Sequence[str] = ("mode",),
) -> Dict[GroupKey, SafetyOutcome]:
    """PCA-style safety outcomes per group, via :func:`aggregate_outcomes`.

    Works for any scenario whose result records carry the PCA safety
    fields (``harmed``, ``respiratory_failure_events``, ...).
    """
    outcomes: Dict[GroupKey, SafetyOutcome] = {}
    for key, group in group_records(records, group_by).items():
        outcomes[key] = aggregate_outcomes(
            SimpleNamespace(**record["result"]) for record in group
        )
    return outcomes


def safety_table(
    records: Sequence[Mapping[str, Any]],
    *,
    group_by: Sequence[str] = ("mode",),
    title: str = "campaign safety outcomes",
    notes: Optional[str] = None,
) -> Table:
    """The E1-style safety table, computed from stored campaign records."""
    table = Table(
        title,
        list(group_by)
        + ["patients", "harmed", "harm_rate", "failure_events",
           "mean_time_spo2<90 (s)", "mean_drug (mg)", "mean_pain"],
        notes=notes,
    )
    for key, outcome in safety_outcomes(records, group_by=group_by).items():
        table.add_row(
            *key,
            outcome.patients,
            outcome.harmed,
            outcome.harm_rate,
            outcome.respiratory_failure_events,
            outcome.mean_time_in_danger_s,
            outcome.mean_drug_mg,
            outcome.mean_pain,
        )
    return table


# --------------------------------------------------------------- streaming
class RunningMoments:
    """Welford online count/mean/M2 (+ min/max), mergeable across shards.

    ``std`` matches the sample standard deviation (``ddof=1``) that
    :func:`~repro.analysis.stats.summarise` reports.  :meth:`merge` uses
    Chan's parallel update, so per-shard moments fold into campaign-wide
    moments without revisiting any record.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "RunningMoments") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0.0 below two observations."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return self.variance ** 0.5


class QuantileSketch:
    """Deterministic KLL-style quantile sketch, mergeable across shards.

    Values land in level 0; when a level overflows its ``capacity`` it is
    *compacted*: sorted, and alternating elements promoted one level up
    (each element at level *k* stands for ``2**k`` observations).  The
    alternation offset is the parity of that level's compaction count —
    no randomness anywhere, so the sketch is a pure function of the value
    sequence and identical on every rerun and hash seed.

    Below ``capacity`` total observations nothing has compacted and the
    sketch still holds the **exact sample in arrival order**
    (:attr:`exact` / :meth:`values`) — the streaming table exploits this
    to be bit-identical with materialised aggregation on every
    bench-sized campaign, while 10⁵-run stores degrade gracefully to
    approximate quantiles with bounded memory.
    """

    __slots__ = ("capacity", "count", "_levels", "_compactions")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 8:
            raise CampaignError("sketch capacity must be >= 8")
        self.capacity = capacity
        self.count = 0
        self._levels: List[List[float]] = [[]]
        self._compactions: List[int] = [0]

    @property
    def exact(self) -> bool:
        """True while the sketch still holds every observation verbatim."""
        return len(self._levels) == 1

    def values(self) -> List[float]:
        """The exact retained sample, in arrival order (requires :attr:`exact`)."""
        if not self.exact:
            raise CampaignError(
                "sketch has compacted; the exact sample is gone")
        return list(self._levels[0])

    def add(self, value: float) -> None:
        self.count += 1
        self._levels[0].append(value)
        if len(self._levels[0]) > self.capacity:
            self._compact(0)

    def _compact(self, level: int) -> None:
        items = sorted(self._levels[level])
        offset = self._compactions[level] % 2
        self._compactions[level] += 1
        self._levels[level] = []
        if level + 1 == len(self._levels):
            self._levels.append([])
            self._compactions.append(0)
        self._levels[level + 1].extend(items[offset::2])
        if len(self._levels[level + 1]) > self.capacity:
            self._compact(level + 1)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in, preserving per-level weights."""
        self.count += other.count
        for level, items in enumerate(other._levels):
            while level >= len(self._levels):
                self._levels.append([])
                self._compactions.append(0)
            self._levels[level].extend(items)
        for level in range(len(self._levels)):
            if len(self._levels[level]) > self.capacity:
                self._compact(level)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the weighted retained sample.

        Exact (numpy ``linear`` interpolation semantics) while
        :attr:`exact`; otherwise the weighted nearest-rank estimate over
        the compacted sample.
        """
        if not 0.0 <= q <= 1.0:
            raise CampaignError("quantile must be in [0, 1]")
        if self.count == 0:
            raise CampaignError("quantile of an empty sketch")
        if self.exact:
            ordered = sorted(self._levels[0])
            position = q * (len(ordered) - 1)
            low = int(position)
            high = min(low + 1, len(ordered) - 1)
            fraction = position - low
            return ordered[low] * (1.0 - fraction) + ordered[high] * fraction
        weighted: List[Tuple[float, int]] = []
        for level, items in enumerate(self._levels):
            weight = 1 << level
            for item in items:
                weighted.append((item, weight))
        weighted.sort(key=lambda pair: pair[0])
        total = sum(weight for _, weight in weighted)
        target = q * total
        cumulative = 0
        for item, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return item
        return weighted[-1][0]

    def median(self) -> float:
        return self.quantile(0.5)


class StreamingMetric:
    """Online state for one metric within one group (moments + sketch)."""

    __slots__ = ("moments", "sketch")

    def __init__(self, sketch_capacity: int) -> None:
        self.moments = RunningMoments()
        self.sketch = QuantileSketch(sketch_capacity)

    def add(self, value: float) -> None:
        self.moments.add(value)
        self.sketch.add(value)

    def merge(self, other: "StreamingMetric") -> None:
        self.moments.merge(other.moments)
        self.sketch.merge(other.sketch)

    def statistic(self, name: str) -> float:
        """One summary statistic; bit-identical to ``summarise`` while exact."""
        if self.moments.count == 0:
            return float("nan")
        if self.sketch.exact:
            # The retained sample is the full sample in arrival order —
            # route through the same numpy summary the materialised path
            # uses so the two tables are byte-identical, subnormals and
            # all.
            summary = summarise(self.sketch.values())
            return {
                "mean": summary.mean,
                "median": summary.median,
                "min": summary.minimum,
                "max": summary.maximum,
                "std": summary.std,
            }[name]
        if name == "mean":
            return self.moments.mean
        if name == "std":
            return self.moments.std
        if name == "min":
            return self.moments.minimum
        if name == "max":
            return self.moments.maximum
        if name == "median":
            return self.sketch.median()
        raise CampaignError(f"unknown statistic {name!r}")


class StreamingAggregator:
    """Record-at-a-time grouped aggregation with bounded memory.

    Feed records with :meth:`add` (or a whole iterable with
    :meth:`consume`); groups appear in first-seen order, exactly like
    :func:`group_records`.  Per-shard aggregators :meth:`merge` into a
    campaign-wide one without revisiting records.
    """

    def __init__(
        self,
        *,
        group_by: Sequence[str],
        metrics: Sequence[str],
        sketch_capacity: int = 4096,
    ) -> None:
        self.group_by = tuple(group_by)
        self.metrics = tuple(metrics)
        self.sketch_capacity = sketch_capacity
        self.records = 0
        self._groups: Dict[GroupKey, Dict[str, Any]] = {}

    def add(self, record: Mapping[str, Any]) -> None:
        key = tuple(_lookup(record, field) for field in self.group_by)
        state = self._groups.get(key)
        if state is None:
            state = {
                "runs": 0,
                "metrics": {metric: StreamingMetric(self.sketch_capacity)
                            for metric in self.metrics},
            }
            self._groups[key] = state
        state["runs"] += 1
        self.records += 1
        for metric in self.metrics:
            value = record["result"].get(metric)
            if value is None:
                continue
            if isinstance(value, bool):
                value = 1.0 if value else 0.0
            if not isinstance(value, (int, float)):
                raise CampaignError(
                    f"result field {metric!r} is not numeric: {value!r}")
            state["metrics"][metric].add(float(value))

    def consume(self, records: Iterable[Mapping[str, Any]]) -> "StreamingAggregator":
        for record in records:
            self.add(record)
        return self

    def merge(self, other: "StreamingAggregator") -> None:
        if (other.group_by != self.group_by or other.metrics != self.metrics):
            raise CampaignError(
                "cannot merge streaming aggregators with different "
                "group_by/metrics")
        self.records += other.records
        for key, state in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                self._groups[key] = state
                continue
            mine["runs"] += state["runs"]
            for metric in self.metrics:
                mine["metrics"][metric].merge(state["metrics"][metric])

    def table(
        self,
        *,
        title: str = "campaign summary",
        statistic: str = "mean",
        notes: Optional[str] = None,
    ) -> Table:
        """Same shape (and, while exact, same bytes) as :func:`campaign_table`."""
        if statistic not in STATISTICS:
            raise CampaignError(f"unknown statistic {statistic!r}")
        columns = (list(self.group_by) + ["runs"]
                   + [f"{statistic}_{metric}" for metric in self.metrics])
        table = Table(title, columns, notes=notes)
        for key, state in self._groups.items():
            row: List[Any] = list(key) + [state["runs"]]
            for metric in self.metrics:
                row.append(state["metrics"][metric].statistic(statistic))
            table.add_row(*row)
        return table


def streaming_campaign_table(
    records: Iterable[Mapping[str, Any]],
    *,
    group_by: Sequence[str],
    metrics: Sequence[str],
    title: str = "campaign summary",
    statistic: str = "mean",
    notes: Optional[str] = None,
    sketch_capacity: int = 4096,
) -> Table:
    """:func:`campaign_table` semantics over a record *stream*.

    Never materialises ``records`` — pass ``store.iter_records()`` and a
    100k-run store is reported in bounded memory.  While every group is
    below ``sketch_capacity`` observations the output is bit-identical to
    the materialised table.
    """
    if statistic not in STATISTICS:
        raise CampaignError(f"unknown statistic {statistic!r}")
    aggregator = StreamingAggregator(
        group_by=group_by, metrics=metrics, sketch_capacity=sketch_capacity)
    return aggregator.consume(records).table(
        title=title, statistic=statistic, notes=notes)
