"""Campaign execution engine: manifest expansion, workers, checkpointing.

The engine expands a :class:`~repro.campaign.spec.CampaignSpec` into run
manifests and executes them either serially (the deterministic reference
path) or on a ``multiprocessing`` pool.  Because every run is seeded from
its stable run id (not from execution order), the two paths produce
identical records; after :meth:`ResultStore.finalize` the on-disk results
are byte-identical as well.

Workers receive the full payload list **once**, through the pool
initializer, and are handed bare list indices per run — so per-run IPC is a
single integer each way plus the result record, and nothing unpicklable
crosses the process boundary.  ``imap_unordered`` chunking is auto-sized to
``max(1, runs // (workers * 4))`` for in-memory campaigns; with a result
store it defaults to 1 so checkpointing keeps per-run granularity (results
only reach the store when their whole chunk completes).  Either way an
explicit ``chunksize`` wins.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign.registry import CampaignError, get_scenario
from repro.campaign.spec import CampaignSpec, RunManifest
from repro.campaign.store import ResultStore
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs.spans import tracer as obs_tracer

ProgressCallback = Callable[[int, int, Dict[str, Any]], None]


def _run_scenario(scenario, manifest: RunManifest) -> Dict[str, Any]:
    """Invoke the scenario runner, normalising failures to CampaignError."""
    try:
        return scenario.runner(dict(manifest.params), manifest.seed)
    except CampaignError:
        raise
    except Exception as error:
        # Name-level validation happens at expansion; bad *values* only
        # surface when the scenario config rejects them here.  Config
        # rejections (ValueError) stay one-line; anything else is a
        # programming error, so embed the traceback in the message — it must
        # travel *inside* the exception because pickling across the worker
        # boundary drops __cause__.
        if isinstance(error, ValueError):
            detail = str(error)
        else:
            detail = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ).rstrip()
        raise CampaignError(
            f"run {manifest.run_id!r} of scenario {manifest.scenario!r} "
            f"failed: {detail}"
        ) from error


def _wrap_record(scenario, manifest: RunManifest,
                 result: Dict[str, Any]) -> Dict[str, Any]:
    """Validate declared result fields and build the campaign record."""
    missing = [key for key in scenario.result_fields if key not in result]
    if missing:
        raise CampaignError(
            f"scenario {manifest.scenario!r} returned a record missing "
            f"declared result fields {missing}"
        )
    return {
        "run_index": manifest.run_index,
        "run_id": manifest.run_id,
        "scenario": manifest.scenario,
        "seed": manifest.seed,
        "params": dict(manifest.params),
        "result": result,
    }


def execute_manifest(manifest: RunManifest) -> Dict[str, Any]:
    """Execute one run and wrap its result in the campaign record schema.

    With observability enabled, each lifecycle phase (setup / run /
    teardown) is wrapped in a wall-clock span whose trace and span ids are
    derived from the run id — deterministic across reruns and joinable
    across worker shards — and the whole run feeds the per-run wall-time
    histogram.  The record itself is byte-identical either way: metrics
    never touch simulation results.
    """
    instruments = obs_metrics.campaign_instruments()
    if instruments is None:
        scenario = get_scenario(manifest.scenario)
        result = _run_scenario(scenario, manifest)
        return _wrap_record(scenario, manifest, result)
    context = obs_tracer().trace(manifest.run_id)
    wall_before = perf_counter()
    with context.span(f"{manifest.scenario}:setup"):
        scenario = get_scenario(manifest.scenario)
    with context.span(f"{manifest.scenario}:run"):
        result = _run_scenario(scenario, manifest)
    with context.span(f"{manifest.scenario}:teardown"):
        record = _wrap_record(scenario, manifest, result)
    instruments.runs.value += 1
    instruments.run_wall_s.observe(perf_counter() - wall_before)
    return record


#: Per-process payload table, populated once by the pool initializer.
_WORKER_PAYLOADS: List[Tuple[int, str, str, Dict[str, Any], int]] = []


#: Where this worker process writes its cumulative metrics shard (or None).
_WORKER_SHARD_DIR: Optional[str] = None


def _pool_initializer(
    payloads: List[Tuple[int, str, str, Dict[str, Any], int]],
    obs_on: bool = False,
    shard_dir: Optional[str] = None,
) -> None:
    """Install the campaign's payload table in a fresh worker process.

    ``obs_on`` carries the parent's observability switch across the process
    boundary explicitly (a programmatic ``enable()`` in the parent is not
    visible to spawn-started workers); ``shard_dir`` is where this worker
    drops its cumulative metrics shard after each run.
    """
    global _WORKER_PAYLOADS, _WORKER_SHARD_DIR
    _WORKER_PAYLOADS = payloads
    _WORKER_SHARD_DIR = shard_dir
    if obs_on:
        obs_metrics.enable()


def _worker(index: int) -> Dict[str, Any]:
    """Pool entry point: look the payload up by index and execute it."""
    run_index, run_id, scenario, params, seed = _WORKER_PAYLOADS[index]
    record = execute_manifest(
        RunManifest(run_index=run_index, run_id=run_id, scenario=scenario,
                    params=params, seed=seed)
    )
    if _WORKER_SHARD_DIR is not None:
        # Rewrite the full cumulative snapshot after every run: shards stay
        # valid whenever the pool is torn down, and the final state is what
        # the parent merge wants anyway.
        pid = os.getpid()
        obs_export.write_snapshot(
            Path(_WORKER_SHARD_DIR) / f"shard-{pid:08d}.ndjson",
            meta={"shard": f"pid-{pid}"},
        )
    return record


@dataclass
class CampaignReport:
    """What a finished (or resumed-to-completion) campaign hands back."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    executed: int
    skipped: int
    workers: int
    directory: Optional[Path] = None
    metrics_path: Optional[Path] = None

    @property
    def total(self) -> int:
        return len(self.records)

    def results(self) -> List[Dict[str, Any]]:
        """The flat per-run result dicts, in run order."""
        return [record["result"] for record in self.records]


class CampaignEngine:
    """Expands and executes one campaign, optionally persisting to disk."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        workers: int = 1,
        directory: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
        chunksize: Optional[int] = None,
        flush_every: int = 1,
        metrics_out: Optional[Union[str, Path]] = None,
    ) -> None:
        if workers < 1:
            raise CampaignError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise CampaignError("chunksize must be >= 1")
        self.spec = spec
        self.workers = workers
        self.chunksize = chunksize
        self.store = (
            ResultStore(directory, flush_every=flush_every)
            if directory is not None else None
        )
        self._mp_context = mp_context
        self.metrics_out = Path(metrics_out) if metrics_out is not None else None
        if self.metrics_out is not None:
            # Requesting a metrics export IS the opt-in: enable obs before
            # any scenario constructs its simulator/channels.
            obs_metrics.enable()

    # ------------------------------------------------------------------- run
    def run(
        self,
        *,
        resume: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Execute every pending run; returns the complete, ordered records.

        With ``resume=True`` (and a store), runs already present in
        ``results.jsonl`` are skipped — re-running an interrupted campaign
        picks up exactly where it stopped.
        """
        manifests = self.spec.expand()
        completed: Dict[int, Dict[str, Any]] = {}
        if resume and self.store is None:
            raise CampaignError(
                "resume requested but no campaign directory is configured; "
                "pass the directory the interrupted campaign wrote to (--out)"
            )
        if self.store is not None:
            self.store.check_manifest(self.spec, manifests)
            if resume:
                self.store.repair()
                completed = self.store.completed()
            elif self.store.results_path.exists():
                # Even a torn, record-less file means a previous attempt ran
                # here; appending to it fresh would corrupt or discard work.
                raise CampaignError(
                    f"campaign directory {self.store.directory} already has results; "
                    "pass resume=True (or --resume) to continue it"
                )
            self.store.write_manifest(self.spec, manifests)

        pending = [m for m in manifests if m.run_index not in completed]
        done = len(completed)
        total = len(manifests)
        wall_before = perf_counter() if self.metrics_out is not None else 0.0
        try:
            for record in self._execute(pending):
                completed[record["run_index"]] = record
                if self.store is not None:
                    self.store.append(record)
                done += 1
                if progress is not None:
                    progress(done, total, record)

            if self.store is not None:
                records = self.store.finalize()
            else:
                records = [completed[index] for index in sorted(completed)]
        finally:
            # Deterministic shutdown: buffered appends reach disk even when a
            # run raises mid-campaign (resume then sees every finished run).
            if self.store is not None:
                self.store.close()
        if self.metrics_out is not None:
            self._write_metrics(perf_counter() - wall_before)
        return CampaignReport(
            spec=self.spec,
            records=records,
            executed=len(pending),
            skipped=total - len(pending),
            workers=self.workers,
            directory=self.store.directory if self.store is not None else None,
            metrics_path=self.metrics_out,
        )

    # --------------------------------------------------------------- workers
    def _execute(self, pending: List[RunManifest]) -> Iterable[Dict[str, Any]]:
        if self.workers == 1 or len(pending) <= 1:
            for manifest in pending:
                yield execute_manifest(manifest)
            return
        payloads = [
            (m.run_index, m.run_id, m.scenario, m.params, m.seed) for m in pending
        ]
        context = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context is not None
            else multiprocessing.get_context()
        )
        processes = min(self.workers, len(payloads))
        chunksize = self.chunksize
        if chunksize is None:
            if self.store is not None:
                # Checkpointing: results only reach the store when their
                # chunk completes, so a large chunk would turn a crash into
                # chunksize*workers re-executed runs.  Keep per-run
                # granularity unless the caller explicitly trades it away.
                chunksize = 1
            else:
                # ~4 chunks per worker: large enough to amortise IPC, small
                # enough that a slow chunk cannot straggle the campaign.
                chunksize = max(1, len(payloads) // (processes * 4))
        shard_dir = self._shard_directory()
        if shard_dir is not None:
            shard_dir.mkdir(parents=True, exist_ok=True)
            for stale in shard_dir.glob("shard-*.ndjson"):
                stale.unlink()
        with context.Pool(
            processes=processes,
            initializer=_pool_initializer,
            initargs=(
                payloads,
                obs_metrics.enabled(),
                str(shard_dir) if shard_dir is not None else None,
            ),
        ) as pool:
            # Payloads ship once via the initializer; the queue carries bare
            # indices.  imap_unordered: records checkpoint as soon as any
            # worker finishes; ordering is restored by ResultStore.finalize /
            # the report sort.
            for record in pool.imap_unordered(_worker, range(len(payloads)),
                                              chunksize=chunksize):
                yield record

    # ----------------------------------------------------------- observability
    def _shard_directory(self) -> Optional[Path]:
        """Sibling directory where worker processes drop metric shards."""
        if self.metrics_out is None:
            return None
        return self.metrics_out.parent / (self.metrics_out.name + ".shards")

    def _write_metrics(self, wall_elapsed: float) -> None:
        """Fold parent + worker-shard snapshots into one NDJSON file.

        Campaign-level aggregates (total wall time, worker count, worker
        utilisation = busy run-seconds over ``workers * wall``) are recorded
        in the parent registry first so they ride the normal export path.
        """
        reg = obs_metrics.registry()
        shard_dir = self._shard_directory()
        shard_paths: List[Path] = []
        shard_groups: List[List[Dict[str, Any]]] = []
        if shard_dir is not None and shard_dir.is_dir():
            shard_paths = sorted(shard_dir.glob("shard-*.ndjson"))
            shard_groups = [obs_export.read_snapshot(path) for path in shard_paths]
        busy = 0.0
        parent_hist = reg.get("campaign.run_wall_s")
        if parent_hist is not None:
            busy += parent_hist.sum
        for lines in shard_groups:
            for line in lines:
                if (line.get("type") == "histogram"
                        and line.get("name") == "campaign.run_wall_s"):
                    busy += float(line.get("sum", 0.0))
        reg.counter("campaign.wall_seconds_total").value += wall_elapsed
        reg.gauge("campaign.workers", agg="max").set_max(float(self.workers))
        if wall_elapsed > 0.0:
            reg.gauge("campaign.worker_utilisation").set(
                min(1.0, busy / (self.workers * wall_elapsed))
            )
        groups = [obs_export.snapshot_lines(meta={"source": "campaign-engine"})]
        groups.extend(shard_groups)
        merged = obs_export.merge_lines(groups)
        self.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        self.metrics_out.write_text(obs_export.dump_lines(merged),
                                    encoding="utf-8")
        for path in shard_paths:
            path.unlink()
        if shard_dir is not None and shard_dir.is_dir():
            try:
                shard_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    directory: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    mp_context: Optional[str] = None,
    chunksize: Optional[int] = None,
    flush_every: int = 1,
    metrics_out: Optional[Union[str, Path]] = None,
) -> CampaignReport:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec, workers=workers, directory=directory, mp_context=mp_context,
        chunksize=chunksize, flush_every=flush_every, metrics_out=metrics_out,
    )
    return engine.run(resume=resume, progress=progress)
