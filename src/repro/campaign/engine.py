"""Campaign execution engine: manifest expansion, workers, checkpointing.

The engine expands a :class:`~repro.campaign.spec.CampaignSpec` into run
manifests and executes them either serially (the deterministic reference
path) or on a ``multiprocessing`` pool.  Because every run is seeded from
its stable run id (not from execution order), the two paths produce
identical records; after :meth:`ResultStore.finalize` the on-disk results
are byte-identical as well.

Workers receive the full payload list **once**, through the pool
initializer, and are handed bare list indices per run — so per-run IPC is a
single integer each way plus the result record, and nothing unpicklable
crosses the process boundary.  ``imap_unordered`` chunking is auto-sized to
``max(1, runs // (workers * 4))`` for in-memory campaigns; with a result
store it defaults to 1 so checkpointing keeps per-run granularity (results
only reach the store when their whole chunk completes).  Either way an
explicit ``chunksize`` wins.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign.registry import CampaignError, get_scenario
from repro.campaign.spec import CampaignSpec, RunManifest
from repro.campaign.store import ResultStore

ProgressCallback = Callable[[int, int, Dict[str, Any]], None]


def execute_manifest(manifest: RunManifest) -> Dict[str, Any]:
    """Execute one run and wrap its result in the campaign record schema."""
    scenario = get_scenario(manifest.scenario)
    try:
        result = scenario.runner(dict(manifest.params), manifest.seed)
    except CampaignError:
        raise
    except Exception as error:
        # Name-level validation happens at expansion; bad *values* only
        # surface when the scenario config rejects them here.  Config
        # rejections (ValueError) stay one-line; anything else is a
        # programming error, so embed the traceback in the message — it must
        # travel *inside* the exception because pickling across the worker
        # boundary drops __cause__.
        if isinstance(error, ValueError):
            detail = str(error)
        else:
            detail = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ).rstrip()
        raise CampaignError(
            f"run {manifest.run_id!r} of scenario {manifest.scenario!r} "
            f"failed: {detail}"
        ) from error
    missing = [key for key in scenario.result_fields if key not in result]
    if missing:
        raise CampaignError(
            f"scenario {manifest.scenario!r} returned a record missing "
            f"declared result fields {missing}"
        )
    return {
        "run_index": manifest.run_index,
        "run_id": manifest.run_id,
        "scenario": manifest.scenario,
        "seed": manifest.seed,
        "params": dict(manifest.params),
        "result": result,
    }


#: Per-process payload table, populated once by the pool initializer.
_WORKER_PAYLOADS: List[Tuple[int, str, str, Dict[str, Any], int]] = []


def _pool_initializer(payloads: List[Tuple[int, str, str, Dict[str, Any], int]]) -> None:
    """Install the campaign's payload table in a fresh worker process."""
    global _WORKER_PAYLOADS
    _WORKER_PAYLOADS = payloads


def _worker(index: int) -> Dict[str, Any]:
    """Pool entry point: look the payload up by index and execute it."""
    run_index, run_id, scenario, params, seed = _WORKER_PAYLOADS[index]
    return execute_manifest(
        RunManifest(run_index=run_index, run_id=run_id, scenario=scenario,
                    params=params, seed=seed)
    )


@dataclass
class CampaignReport:
    """What a finished (or resumed-to-completion) campaign hands back."""

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    executed: int
    skipped: int
    workers: int
    directory: Optional[Path] = None

    @property
    def total(self) -> int:
        return len(self.records)

    def results(self) -> List[Dict[str, Any]]:
        """The flat per-run result dicts, in run order."""
        return [record["result"] for record in self.records]


class CampaignEngine:
    """Expands and executes one campaign, optionally persisting to disk."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        workers: int = 1,
        directory: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
        chunksize: Optional[int] = None,
        flush_every: int = 1,
    ) -> None:
        if workers < 1:
            raise CampaignError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise CampaignError("chunksize must be >= 1")
        self.spec = spec
        self.workers = workers
        self.chunksize = chunksize
        self.store = (
            ResultStore(directory, flush_every=flush_every)
            if directory is not None else None
        )
        self._mp_context = mp_context

    # ------------------------------------------------------------------- run
    def run(
        self,
        *,
        resume: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Execute every pending run; returns the complete, ordered records.

        With ``resume=True`` (and a store), runs already present in
        ``results.jsonl`` are skipped — re-running an interrupted campaign
        picks up exactly where it stopped.
        """
        manifests = self.spec.expand()
        completed: Dict[int, Dict[str, Any]] = {}
        if resume and self.store is None:
            raise CampaignError(
                "resume requested but no campaign directory is configured; "
                "pass the directory the interrupted campaign wrote to (--out)"
            )
        if self.store is not None:
            self.store.check_manifest(self.spec, manifests)
            if resume:
                self.store.repair()
                completed = self.store.completed()
            elif self.store.results_path.exists():
                # Even a torn, record-less file means a previous attempt ran
                # here; appending to it fresh would corrupt or discard work.
                raise CampaignError(
                    f"campaign directory {self.store.directory} already has results; "
                    "pass resume=True (or --resume) to continue it"
                )
            self.store.write_manifest(self.spec, manifests)

        pending = [m for m in manifests if m.run_index not in completed]
        done = len(completed)
        total = len(manifests)
        try:
            for record in self._execute(pending):
                completed[record["run_index"]] = record
                if self.store is not None:
                    self.store.append(record)
                done += 1
                if progress is not None:
                    progress(done, total, record)

            if self.store is not None:
                records = self.store.finalize()
            else:
                records = [completed[index] for index in sorted(completed)]
        finally:
            # Deterministic shutdown: buffered appends reach disk even when a
            # run raises mid-campaign (resume then sees every finished run).
            if self.store is not None:
                self.store.close()
        return CampaignReport(
            spec=self.spec,
            records=records,
            executed=len(pending),
            skipped=total - len(pending),
            workers=self.workers,
            directory=self.store.directory if self.store is not None else None,
        )

    # --------------------------------------------------------------- workers
    def _execute(self, pending: List[RunManifest]) -> Iterable[Dict[str, Any]]:
        if self.workers == 1 or len(pending) <= 1:
            for manifest in pending:
                yield execute_manifest(manifest)
            return
        payloads = [
            (m.run_index, m.run_id, m.scenario, m.params, m.seed) for m in pending
        ]
        context = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context is not None
            else multiprocessing.get_context()
        )
        processes = min(self.workers, len(payloads))
        chunksize = self.chunksize
        if chunksize is None:
            if self.store is not None:
                # Checkpointing: results only reach the store when their
                # chunk completes, so a large chunk would turn a crash into
                # chunksize*workers re-executed runs.  Keep per-run
                # granularity unless the caller explicitly trades it away.
                chunksize = 1
            else:
                # ~4 chunks per worker: large enough to amortise IPC, small
                # enough that a slow chunk cannot straggle the campaign.
                chunksize = max(1, len(payloads) // (processes * 4))
        with context.Pool(
            processes=processes,
            initializer=_pool_initializer,
            initargs=(payloads,),
        ) as pool:
            # Payloads ship once via the initializer; the queue carries bare
            # indices.  imap_unordered: records checkpoint as soon as any
            # worker finishes; ordering is restored by ResultStore.finalize /
            # the report sort.
            for record in pool.imap_unordered(_worker, range(len(payloads)),
                                              chunksize=chunksize):
                yield record


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    directory: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    mp_context: Optional[str] = None,
    chunksize: Optional[int] = None,
    flush_every: int = 1,
) -> CampaignReport:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec, workers=workers, directory=directory, mp_context=mp_context,
        chunksize=chunksize, flush_every=flush_every,
    )
    return engine.run(resume=resume, progress=progress)
