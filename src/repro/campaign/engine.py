"""Campaign execution engine: manifest expansion, workers, checkpointing.

The engine expands a :class:`~repro.campaign.spec.CampaignSpec` into run
manifests and executes them either serially (the deterministic reference
path) or on a ``multiprocessing`` pool.  Because every run is seeded from
its stable run id (not from execution order), the two paths produce
identical records; after :meth:`ResultStore.finalize` the on-disk results
are byte-identical as well.

Workers receive the full payload list **once**, through the pool
initializer, and are handed bare list indices per run — so per-run IPC is a
single integer each way plus the result record, and nothing unpicklable
crosses the process boundary.  ``imap_unordered`` chunking is auto-sized to
``max(1, runs // (workers * 4))`` for in-memory campaigns; with a result
store it defaults to 1 so checkpointing keeps per-run granularity (results
only reach the store when their whole chunk completes).  Either way an
explicit ``chunksize`` wins.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign import resilience as _resilience
from repro.campaign.registry import CampaignError, get_scenario
from repro.campaign.resilience import (
    OK,
    TIMEOUT,
    Heartbeat,
    Outcome,
    ResilienceConfig,
    ResilientDispatcher,
    RetryPolicy,
    execute_with_capture,
)
from repro.campaign.sharding import ShardSelector
from repro.campaign.spec import CampaignSpec, RunManifest
from repro.campaign.store import ResultStore
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs.spans import tracer as obs_tracer

ProgressCallback = Callable[[int, int, Dict[str, Any]], None]


def _run_scenario(scenario, manifest: RunManifest) -> Dict[str, Any]:
    """Invoke the scenario runner, normalising failures to CampaignError."""
    try:
        return scenario.runner(dict(manifest.params), manifest.seed)
    except CampaignError:
        raise
    except Exception as error:
        # Name-level validation happens at expansion; bad *values* only
        # surface when the scenario config rejects them here.  Config
        # rejections (ValueError) stay one-line; anything else is a
        # programming error, so embed the traceback in the message — it must
        # travel *inside* the exception because pickling across the worker
        # boundary drops __cause__.
        if isinstance(error, ValueError):
            detail = str(error)
        else:
            detail = "".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ).rstrip()
        raise CampaignError(
            f"run {manifest.run_id!r} of scenario {manifest.scenario!r} "
            f"failed: {detail}"
        ) from error


def _wrap_record(scenario, manifest: RunManifest,
                 result: Dict[str, Any]) -> Dict[str, Any]:
    """Validate declared result fields and build the campaign record."""
    missing = [key for key in scenario.result_fields if key not in result]
    if missing:
        raise CampaignError(
            f"scenario {manifest.scenario!r} returned a record missing "
            f"declared result fields {missing}"
        )
    return {
        "run_index": manifest.run_index,
        "run_id": manifest.run_id,
        "scenario": manifest.scenario,
        "seed": manifest.seed,
        "params": dict(manifest.params),
        "result": result,
    }


def execute_manifest(manifest: RunManifest) -> Dict[str, Any]:
    """Execute one run and wrap its result in the campaign record schema.

    With observability enabled, each lifecycle phase (setup / run /
    teardown) is wrapped in a wall-clock span whose trace and span ids are
    derived from the run id — deterministic across reruns and joinable
    across worker shards — and the whole run feeds the per-run wall-time
    histogram.  The record itself is byte-identical either way: metrics
    never touch simulation results.
    """
    instruments = obs_metrics.campaign_instruments()
    if instruments is None:
        scenario = get_scenario(manifest.scenario)
        result = _run_scenario(scenario, manifest)
        return _wrap_record(scenario, manifest, result)
    context = obs_tracer().trace(manifest.run_id)
    wall_before = perf_counter()
    with context.span(f"{manifest.scenario}:setup"):
        scenario = get_scenario(manifest.scenario)
    with context.span(f"{manifest.scenario}:run"):
        result = _run_scenario(scenario, manifest)
    with context.span(f"{manifest.scenario}:teardown"):
        record = _wrap_record(scenario, manifest, result)
    instruments.runs.value += 1
    instruments.run_wall_s.observe(perf_counter() - wall_before)
    return record


#: Per-process payload table, populated once by the pool initializer.
_WORKER_PAYLOADS: List[Tuple[int, str, str, Dict[str, Any], int]] = []


#: Where this worker process writes its cumulative metrics shard (or None).
_WORKER_SHARD_DIR: Optional[str] = None

#: Retry policy for resilient workers (None = legacy fail-fast workers).
_WORKER_RETRY_POLICY: Optional[RetryPolicy] = None

#: Heartbeat writer for resilient workers (None = no watchdog).
_WORKER_HEARTBEAT: Optional[Heartbeat] = None


def _pool_initializer(
    payloads: List[Tuple[int, str, str, Dict[str, Any], int]],
    obs_on: bool = False,
    shard_dir: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    heartbeat_dir: Optional[str] = None,
) -> None:
    """Install the campaign's payload table in a fresh worker process.

    ``obs_on`` carries the parent's observability switch across the process
    boundary explicitly (a programmatic ``enable()`` in the parent is not
    visible to spawn-started workers); ``shard_dir`` is where this worker
    drops its cumulative metrics shard after each run.  ``retry_policy`` /
    ``heartbeat_dir`` are only set for resilient campaigns; the pool
    respawning a killed worker re-runs this initializer, so replacements
    come up with the same configuration.
    """
    global _WORKER_PAYLOADS, _WORKER_SHARD_DIR
    global _WORKER_RETRY_POLICY, _WORKER_HEARTBEAT
    _WORKER_PAYLOADS = payloads
    _WORKER_SHARD_DIR = shard_dir
    _WORKER_RETRY_POLICY = retry_policy
    _WORKER_HEARTBEAT = (
        Heartbeat(heartbeat_dir) if heartbeat_dir is not None else None
    )
    if retry_policy is not None:
        _resilience._mark_worker()
    if obs_on:
        obs_metrics.enable()


def _write_worker_shard() -> None:
    """Rewrite this worker's cumulative metrics snapshot (if sharding)."""
    if _WORKER_SHARD_DIR is None:
        return
    # Rewrite the full cumulative snapshot after every run: shards stay
    # valid whenever the pool is torn down, and the final state is what
    # the parent merge wants anyway.
    pid = os.getpid()
    obs_export.write_snapshot(
        Path(_WORKER_SHARD_DIR) / f"shard-{pid:08d}.ndjson",
        meta={"shard": f"pid-{pid}"},
    )


def _worker(index: int) -> Dict[str, Any]:
    """Pool entry point: look the payload up by index and execute it."""
    run_index, run_id, scenario, params, seed = _WORKER_PAYLOADS[index]
    record = execute_manifest(
        RunManifest(run_index=run_index, run_id=run_id, scenario=scenario,
                    params=params, seed=seed)
    )
    _write_worker_shard()
    return record


def _note_retry() -> None:
    """Count one in-worker retry in this process's metrics registry."""
    instruments = obs_metrics.campaign_instruments()
    if instruments is not None:
        instruments.runs_retried.value += 1


def _resilient_worker(index: int) -> Outcome:
    """Pool entry point for resilient campaigns: never raises for run failures.

    Writes a heartbeat file while the run executes (the parent watchdog
    reads it to enforce timeouts and detect worker death) and returns an
    :data:`Outcome` tuple instead of propagating exceptions, so one bad run
    cannot poison the pool.
    """
    run_index, run_id, scenario, params, seed = _WORKER_PAYLOADS[index]
    manifest = RunManifest(run_index=run_index, run_id=run_id,
                           scenario=scenario, params=params, seed=seed)
    heartbeat = _WORKER_HEARTBEAT
    if heartbeat is not None:
        heartbeat.start(index)
    try:
        outcome = execute_with_capture(
            manifest,
            _WORKER_RETRY_POLICY or RetryPolicy(),
            on_retry=_note_retry,
        )
    finally:
        if heartbeat is not None:
            heartbeat.finish(index)
    _write_worker_shard()
    return outcome


@dataclass
class CampaignReport:
    """What a finished (or resumed-to-completion) campaign hands back.

    With resilience enabled, the failure-path counters separate the runs
    that finished cleanly (``ok``), finished after in-worker retries
    (``retried``, a subset of ``ok``), were quarantined to ``errors.jsonl``
    (``quarantined``, of which ``timed_out`` exceeded their wall-clock
    budget), and how many worker processes were killed or lost along the
    way (``worker_restarts``).  Without resilience every executed run is
    ``ok`` (a failure would have raised instead).
    """

    spec: CampaignSpec
    records: List[Dict[str, Any]]
    executed: int
    skipped: int
    workers: int
    directory: Optional[Path] = None
    metrics_path: Optional[Path] = None
    ok: int = 0
    retried: int = 0
    quarantined: int = 0
    timed_out: int = 0
    worker_restarts: int = 0
    errors: List[Dict[str, Any]] = field(default_factory=list)
    shard: Optional[ShardSelector] = None

    @property
    def total(self) -> int:
        return len(self.records)

    def results(self) -> List[Dict[str, Any]]:
        """The flat per-run result dicts, in run order."""
        return [record["result"] for record in self.records]


class CampaignEngine:
    """Expands and executes one campaign, optionally persisting to disk."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        workers: int = 1,
        directory: Optional[Union[str, Path]] = None,
        mp_context: Optional[str] = None,
        chunksize: Optional[int] = None,
        flush_every: int = 1,
        metrics_out: Optional[Union[str, Path]] = None,
        resilience: Optional[ResilienceConfig] = None,
        shard: Optional[ShardSelector] = None,
    ) -> None:
        if workers < 1:
            raise CampaignError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise CampaignError("chunksize must be >= 1")
        if shard is not None:
            shard.validate()
        self.spec = spec
        self.shard = shard
        self.workers = workers
        self.chunksize = chunksize
        self.store = (
            ResultStore(directory, flush_every=flush_every)
            if directory is not None else None
        )
        self._mp_context = mp_context
        self.resilience = resilience
        self._dispatch_stats: Dict[str, int] = {}
        self.metrics_out = Path(metrics_out) if metrics_out is not None else None
        if self.metrics_out is not None:
            # Requesting a metrics export IS the opt-in: enable obs before
            # any scenario constructs its simulator/channels.
            obs_metrics.enable()

    # ------------------------------------------------------------------- run
    def run(
        self,
        *,
        resume: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Execute every pending run; returns the complete, ordered records.

        With ``resume=True`` (and a store), runs already present in
        ``results.jsonl`` are skipped — re-running an interrupted campaign
        picks up exactly where it stopped.  Quarantined runs are *not*
        skipped: ``errors.jsonl`` is reset and every previously failed run
        is re-dispatched (it either succeeds this time or quarantines
        afresh).
        """
        manifests = self.spec.expand()
        shard_block: Optional[Dict[str, Any]] = None
        if self.shard is not None:
            # A sharded session is a complete campaign over its partition:
            # the same store/resume/finalize machinery runs unchanged on the
            # subset, and the manifest records the claimed assignment so a
            # later merge audits segments against it.
            shard_block = self.shard.manifest_block(len(manifests))
            manifests = self.shard.partition(manifests)
        completed: Dict[int, Dict[str, Any]] = {}
        if resume and self.store is None:
            raise CampaignError(
                "resume requested but no campaign directory is configured; "
                "pass the directory the interrupted campaign wrote to (--out)"
            )
        if self.store is not None:
            self.store.check_manifest(self.spec, manifests, shard=shard_block)
            if resume:
                self.store.repair()
                self.store.reset_errors()
                completed = self.store.completed()
            elif self.store.results_path.exists():
                # Even a torn, record-less file means a previous attempt ran
                # here; appending to it fresh would corrupt or discard work.
                raise CampaignError(
                    f"campaign directory {self.store.directory} already has results; "
                    "pass resume=True (or --resume) to continue it"
                )
            self.store.write_manifest(self.spec, manifests, shard=shard_block)

        pending = [m for m in manifests if m.run_index not in completed]
        done = len(completed)
        total = len(manifests)
        ok = retried = quarantined = timed_out = 0
        errors: List[Dict[str, Any]] = []
        self._dispatch_stats = {}
        wall_before = perf_counter() if self.metrics_out is not None else 0.0
        try:
            for kind, record, attempts in self._execute(pending):
                if kind == OK:
                    completed[record["run_index"]] = record
                    if self.store is not None:
                        self.store.append(record)
                    ok += 1
                    if attempts > 1:
                        retried += 1
                else:
                    quarantined += 1
                    if record["error"]["classification"] == TIMEOUT:
                        timed_out += 1
                    errors.append(record)
                    if self.store is not None:
                        self.store.append_error(record)
                done += 1
                if progress is not None:
                    progress(done, total, record)

            if self.store is not None:
                records = self.store.finalize()
                self.store.finalize_errors()
            else:
                records = [completed[index] for index in sorted(completed)]
        finally:
            # Deterministic shutdown: buffered appends reach disk even when a
            # run raises mid-campaign (resume then sees every finished run).
            if self.store is not None:
                self.store.close()
        worker_restarts = self._dispatch_stats.get("worker_restarts", 0)
        instruments = obs_metrics.campaign_instruments()
        if instruments is not None:
            # Parent-side failure counters (in-worker retries are counted in
            # the worker shards; quarantine decisions happen here).
            instruments.runs_quarantined.value += quarantined
            instruments.worker_restarts.value += worker_restarts
        if self.metrics_out is not None:
            self._write_metrics(perf_counter() - wall_before)
        return CampaignReport(
            spec=self.spec,
            records=records,
            executed=len(pending),
            skipped=total - len(pending),
            workers=self.workers,
            directory=self.store.directory if self.store is not None else None,
            metrics_path=self.metrics_out,
            ok=ok,
            retried=retried,
            quarantined=quarantined,
            timed_out=timed_out,
            worker_restarts=worker_restarts,
            errors=errors,
            shard=self.shard,
        )

    # --------------------------------------------------------------- workers
    def _execute(self, pending: List[RunManifest]) -> Iterable[Outcome]:
        """Yield one :data:`Outcome` tuple per pending run.

        Without resilience, runs execute exactly as before (failures raise)
        and successful records are wrapped as ``("ok", record, 1)``.
        """
        if self.workers == 1 or len(pending) <= 1:
            yield from self._execute_serial(pending)
        else:
            yield from self._execute_parallel(pending)

    def _execute_serial(self, pending: List[RunManifest]) -> Iterable[Outcome]:
        if self.resilience is None:
            for manifest in pending:
                yield (OK, execute_manifest(manifest), 1)
            return
        policy = self.resilience.retry
        for manifest in pending:
            yield execute_with_capture(manifest, policy, on_retry=_note_retry)

    def _execute_parallel(self, pending: List[RunManifest]) -> Iterable[Outcome]:
        payloads = [
            (m.run_index, m.run_id, m.scenario, m.params, m.seed) for m in pending
        ]
        context = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context is not None
            else multiprocessing.get_context()
        )
        processes = min(self.workers, len(payloads))
        chunksize = self.chunksize
        if chunksize is None:
            if self.store is not None:
                # Checkpointing: results only reach the store when their
                # chunk completes, so a large chunk would turn a crash into
                # chunksize*workers re-executed runs.  Keep per-run
                # granularity unless the caller explicitly trades it away.
                chunksize = 1
            else:
                # ~4 chunks per worker: large enough to amortise IPC, small
                # enough that a slow chunk cannot straggle the campaign.
                chunksize = max(1, len(payloads) // (processes * 4))
        shard_dir = self._shard_directory()
        if shard_dir is not None:
            shard_dir.mkdir(parents=True, exist_ok=True)
            for stale in shard_dir.glob("shard-*.ndjson"):
                stale.unlink()
        if self.resilience is not None:
            heartbeat = Heartbeat()
            with context.Pool(
                processes=processes,
                initializer=_pool_initializer,
                initargs=(
                    payloads,
                    obs_metrics.enabled(),
                    str(shard_dir) if shard_dir is not None else None,
                    self.resilience.retry,
                    str(heartbeat.directory),
                ),
            ) as pool:
                dispatcher = ResilientDispatcher(
                    pool, pending, self.resilience, heartbeat,
                    _resilient_worker, processes, on_retry=_note_retry,
                )
                try:
                    yield from dispatcher.outcomes()
                finally:
                    self._dispatch_stats = dict(dispatcher.stats)
            return
        with context.Pool(
            processes=processes,
            initializer=_pool_initializer,
            initargs=(
                payloads,
                obs_metrics.enabled(),
                str(shard_dir) if shard_dir is not None else None,
            ),
        ) as pool:
            # Payloads ship once via the initializer; the queue carries bare
            # indices.  imap_unordered: records checkpoint as soon as any
            # worker finishes; ordering is restored by ResultStore.finalize /
            # the report sort.
            for record in pool.imap_unordered(_worker, range(len(payloads)),
                                              chunksize=chunksize):
                yield (OK, record, 1)

    # ----------------------------------------------------------- observability
    def _shard_directory(self) -> Optional[Path]:
        """Sibling directory where worker processes drop metric shards."""
        if self.metrics_out is None:
            return None
        return self.metrics_out.parent / (self.metrics_out.name + ".shards")

    def _write_metrics(self, wall_elapsed: float) -> None:
        """Fold parent + worker-shard snapshots into one NDJSON file.

        Campaign-level aggregates (total wall time, worker count, worker
        utilisation = busy run-seconds over ``workers * wall``) are recorded
        in the parent registry first so they ride the normal export path.
        """
        reg = obs_metrics.registry()
        shard_dir = self._shard_directory()
        shard_paths: List[Path] = []
        shard_groups: List[List[Dict[str, Any]]] = []
        if shard_dir is not None and shard_dir.is_dir():
            shard_paths = sorted(shard_dir.glob("shard-*.ndjson"))
            shard_groups = [obs_export.read_snapshot(path) for path in shard_paths]
        busy = 0.0
        parent_hist = reg.get("campaign.run_wall_s")
        if parent_hist is not None:
            busy += parent_hist.sum
        for lines in shard_groups:
            for line in lines:
                if (line.get("type") == "histogram"
                        and line.get("name") == "campaign.run_wall_s"):
                    busy += float(line.get("sum", 0.0))
        reg.counter("campaign.wall_seconds_total").value += wall_elapsed
        reg.gauge("campaign.workers", agg="max").set_max(float(self.workers))
        if wall_elapsed > 0.0:
            reg.gauge("campaign.worker_utilisation").set(
                min(1.0, busy / (self.workers * wall_elapsed))
            )
        groups = [obs_export.snapshot_lines(meta={"source": "campaign-engine"})]
        groups.extend(shard_groups)
        merged = obs_export.merge_lines(groups)
        self.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        self.metrics_out.write_text(obs_export.dump_lines(merged),
                                    encoding="utf-8")
        for path in shard_paths:
            path.unlink()
        if shard_dir is not None and shard_dir.is_dir():
            try:
                shard_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    directory: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    mp_context: Optional[str] = None,
    chunksize: Optional[int] = None,
    flush_every: int = 1,
    metrics_out: Optional[Union[str, Path]] = None,
    resilience: Optional[ResilienceConfig] = None,
    shard: Optional[ShardSelector] = None,
) -> CampaignReport:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec, workers=workers, directory=directory, mp_context=mp_context,
        chunksize=chunksize, flush_every=flush_every, metrics_out=metrics_out,
        resilience=resilience, shard=shard,
    )
    return engine.run(resume=resume, progress=progress)
