"""Streaming JSONL result store with checkpoint/resume and quarantine.

Layout of a campaign directory::

    <dir>/manifest.json   # the spec plus the fully expanded run list
    <dir>/results.jsonl   # one JSON object per completed run
    <dir>/errors.jsonl    # one JSON object per quarantined (failed) run

Results are appended through one persistent handle as runs complete and
flushed every ``flush_every`` records (default 1), so an interrupted
campaign loses at most the in-flight runs plus any unflushed tail;
:meth:`ResultStore.completed` tolerates a torn final line when re-reading.
:meth:`ResultStore.finalize` rewrites ``results.jsonl`` in run-index order
through an atomic replace, which makes the finished file byte-identical
regardless of whether the campaign ran serially, in parallel, or across
several resumed sessions.

``errors.jsonl`` follows the same discipline (persistent append handle,
torn-tail repair, atomic finalize) but is *session-scoped*: resuming a
campaign resets it, because every quarantined run is re-dispatched and
either succeeds (no error record) or fails afresh (a new error record).

Corruption tolerance: a torn line written by this store can only ever be
the file's tail (writes are sequential through one handle), but a file can
also be damaged *in the middle* by the storage layer.  Reads therefore
skip any undecodable line and keep the intact records after it, and
:meth:`repair` reports how many lines were dropped instead of silently
truncating everything past the first bad byte.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.registry import CampaignError
from repro.campaign.spec import CampaignSpec, RunManifest

MANIFEST_FILE = "manifest.json"
RESULTS_FILE = "results.jsonl"
ERRORS_FILE = "errors.jsonl"


def _sanitize(value: Any) -> Any:
    """Map non-finite floats to None so the output is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def _dumps(record: Dict[str, Any]) -> str:
    """Canonical strict-JSON encoding (sorted keys, compact, NaN/inf -> null).

    ``allow_nan=False`` because a bare ``NaN`` token would make the file
    unreadable for every non-Python JSON consumer.
    """
    return json.dumps(_sanitize(record), sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def scan_jsonl(path: Path) -> Tuple[List[Dict[str, Any]], int]:
    """(intact records, skipped line count) of a possibly damaged JSONL file.

    Any line that fails to parse — a torn tail from an interrupted write or
    a corrupted interior line — is skipped; every intact line after it is
    still returned, so one bad sector never discards the rest of a
    campaign.
    """
    if not path.exists():
        return [], 0
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return records, skipped


class _AppendFile:
    """One append-only JSONL file behind a persistent, batched-flush handle."""

    def __init__(self, path: Path, flush_every: int) -> None:
        self.path = path
        self.flush_every = flush_every
        self._handle = None
        self._unflushed = 0

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(_dumps(record) + "\n")
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if self._handle is not None and self._unflushed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None


class ResultStore:
    """Disk-backed store for one campaign's manifest, results, and errors.

    Appends go through one persistent file handle per file instead of an
    open/write/close cycle per record.  ``flush_every`` batches the
    flush+fsync behind every N appends: the default of 1 keeps the seed's
    per-record durability, larger values trade at most N-1 tail records on
    a crash for much cheaper appends.  Error appends always flush
    immediately — quarantine records are rare and must survive the crash
    that often follows them.
    """

    def __init__(self, directory: Union[str, Path], *, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise CampaignError("flush_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / MANIFEST_FILE
        self.results_path = self.directory / RESULTS_FILE
        self.errors_path = self.directory / ERRORS_FILE
        self.flush_every = flush_every
        self._results = _AppendFile(self.results_path, flush_every)
        self._errors = _AppendFile(self.errors_path, flush_every=1)
        #: Lines dropped by the most recent :meth:`repair` (per file).
        self.last_repair_skipped: Dict[str, int] = {}

    # -------------------------------------------------------------- manifest
    def write_manifest(self, spec: CampaignSpec, manifests: Sequence[RunManifest]) -> None:
        payload = {
            "spec": spec.as_dict(),
            "runs": [manifest.as_dict() for manifest in manifests],
        }
        self._atomic_write(self.manifest_path, _dumps(payload))

    def load_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.manifest_path.exists():
            return None
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def check_manifest(
        self, spec: CampaignSpec, manifests: Optional[Sequence[RunManifest]] = None
    ) -> None:
        """Refuse to resume into a directory holding a *different* campaign.

        Comparing the expanded run list as well as the spec matters: scenario
        registry *defaults* are resolved into each manifest but absent from
        the spec, so a changed default would otherwise silently mix records
        from two parameterisations in one results file.
        """
        existing = self.load_manifest()
        if existing is None:
            return
        if existing.get("spec") != spec.as_dict():
            raise CampaignError(
                f"campaign directory {self.directory} already holds campaign "
                f"{existing.get('spec', {}).get('name')!r} with a different spec; "
                "pass a fresh directory or the matching spec"
            )
        if manifests is not None:
            # Normalise through the same JSON encoding the manifest was
            # written with so tuples/lists etc. compare equal.
            fresh = json.loads(_dumps({"runs": [m.as_dict() for m in manifests]}))
            if existing.get("runs") != fresh["runs"]:
                raise CampaignError(
                    f"campaign directory {self.directory} was produced with "
                    "different resolved run parameters (a scenario default has "
                    "changed?); pass a fresh directory"
                )

    # --------------------------------------------------------------- results
    def append(self, record: Dict[str, Any]) -> None:
        """Append one completed-run record; durability follows ``flush_every``."""
        self._results.append(record)

    def append_error(self, record: Dict[str, Any]) -> None:
        """Quarantine one failed-run record (always flushed immediately)."""
        self._errors.append(record)

    def flush(self) -> None:
        """Flush and fsync any buffered appends (results and errors)."""
        self._results.flush()
        self._errors.flush()

    def close(self) -> None:
        """Flush and release the append handles (safe to call repeatedly)."""
        self._results.close()
        self._errors.close()

    def records(self) -> List[Dict[str, Any]]:
        """All intact result records on disk (torn/corrupt lines skipped)."""
        self._results.flush()  # make buffered appends visible to the read
        return scan_jsonl(self.results_path)[0]

    def error_records(self) -> List[Dict[str, Any]]:
        """All intact quarantine records on disk."""
        self._errors.flush()
        return scan_jsonl(self.errors_path)[0]

    def completed(self) -> Dict[int, Dict[str, Any]]:
        """Completed records keyed by run index (last write wins)."""
        return {record["run_index"]: record for record in self.records()}

    def repair(self) -> int:
        """Drop undecodable lines from both JSONL files; returns kept results.

        Must run before appending to a file that may end in a torn line from
        an interrupted write — otherwise the next append would concatenate
        onto the fragment and corrupt that record too.  Interior corruption
        (a damaged line *between* intact ones) is skipped, not truncated at:
        every intact record before and after it survives.  Per-file skip
        counts are reported in :attr:`last_repair_skipped`.
        """
        self.close()  # the atomic replace below would orphan open handles
        self.last_repair_skipped = {}
        kept = 0
        for path in (self.results_path, self.errors_path):
            records, skipped = scan_jsonl(path)
            if path.exists():
                body = "".join(_dumps(record) + "\n" for record in records)
                self._atomic_write(path, body)
            if skipped:
                self.last_repair_skipped[path.name] = skipped
            if path == self.results_path:
                kept = len(records)
        return kept

    def reset_errors(self) -> None:
        """Truncate ``errors.jsonl`` (quarantined runs are being re-dispatched)."""
        self._errors.close()
        if self.errors_path.exists():
            self._atomic_write(self.errors_path, "")

    def finalize(self) -> List[Dict[str, Any]]:
        """Rewrite ``results.jsonl`` sorted by run index; return the records."""
        self._results.close()  # the atomic replace would orphan an open handle
        completed = self.completed()
        ordered = [completed[index] for index in sorted(completed)]
        body = "".join(_dumps(record) + "\n" for record in ordered)
        self._atomic_write(self.results_path, body)
        return ordered

    def finalize_errors(self) -> List[Dict[str, Any]]:
        """Rewrite ``errors.jsonl`` sorted by run index; return the records.

        An empty quarantine leaves no file behind, so a clean campaign
        directory looks exactly as it did before quarantine existed.
        """
        self._errors.close()
        by_index = {record["run_index"]: record
                    for record in self.error_records()}
        ordered = [by_index[index] for index in sorted(by_index)]
        if ordered:
            body = "".join(_dumps(record) + "\n" for record in ordered)
            self._atomic_write(self.errors_path, body)
        elif self.errors_path.exists():
            self.errors_path.unlink()
        return ordered

    # --------------------------------------------------------------- helpers
    def _atomic_write(self, path: Path, content: str) -> None:
        temporary = path.with_suffix(path.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)


def load_results(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Convenience: the intact records of a campaign directory, in run order."""
    records = ResultStore(directory).completed()
    return [records[index] for index in sorted(records)]


def load_errors(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Convenience: the quarantine records of a campaign directory, in run order."""
    records = {record["run_index"]: record
               for record in ResultStore(directory).error_records()}
    return [records[index] for index in sorted(records)]
