"""Streaming JSONL result store with checkpoint/resume and quarantine.

Layout of a campaign directory::

    <dir>/manifest.json      # the spec plus the fully expanded run list
    <dir>/results.jsonl      # one JSON object per completed run
    <dir>/errors.jsonl       # one JSON object per quarantined (failed) run
    <dir>/shard_index.json   # merged stores only: content-hashed segment index

A *shard segment* is a campaign directory whose manifest additionally
carries a ``shard`` block (index / count / strategy / owned run indices);
:meth:`ResultStore.merge` folds any number of sibling segments into one
merged store whose ``results.jsonl`` is byte-identical to a serial run of
the whole campaign, recording every segment's content hash in
``shard_index.json``.

Results are appended through one persistent handle as runs complete and
flushed every ``flush_every`` records (default 1), so an interrupted
campaign loses at most the in-flight runs plus any unflushed tail;
:meth:`ResultStore.completed` tolerates a torn final line when re-reading.
:meth:`ResultStore.finalize` rewrites ``results.jsonl`` in run-index order
through an atomic replace, which makes the finished file byte-identical
regardless of whether the campaign ran serially, in parallel, or across
several resumed sessions.

``errors.jsonl`` follows the same discipline (persistent append handle,
torn-tail repair, atomic finalize) but is *session-scoped*: resuming a
campaign resets it, because every quarantined run is re-dispatched and
either succeeds (no error record) or fails afresh (a new error record).

Corruption tolerance: a torn line written by this store can only ever be
the file's tail (writes are sequential through one handle), but a file can
also be damaged *in the middle* by the storage layer.  Reads therefore
skip any undecodable line and keep the intact records after it, and
:meth:`repair` reports how many lines were dropped instead of silently
truncating everything past the first bad byte.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.campaign.registry import CampaignError
from repro.campaign.spec import CampaignSpec, RunManifest

MANIFEST_FILE = "manifest.json"
RESULTS_FILE = "results.jsonl"
ERRORS_FILE = "errors.jsonl"
SHARD_INDEX_FILE = "shard_index.json"
SHARD_INDEX_SCHEMA = 1


def _sanitize(value: Any) -> Any:
    """Map non-finite floats to None so the output is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def _dumps(record: Dict[str, Any]) -> str:
    """Canonical strict-JSON encoding (sorted keys, compact, NaN/inf -> null).

    ``allow_nan=False`` because a bare ``NaN`` token would make the file
    unreadable for every non-Python JSON consumer.
    """
    return json.dumps(_sanitize(record), sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def scan_jsonl(path: Path) -> Tuple[List[Dict[str, Any]], int]:
    """(intact records, skipped line count) of a possibly damaged JSONL file.

    Any line that fails to parse — a torn tail from an interrupted write or
    a corrupted interior line — is skipped; every intact line after it is
    still returned, so one bad sector never discards the rest of a
    campaign.
    """
    if not path.exists():
        return [], 0
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return records, skipped


def iter_jsonl(path: Path) -> Iterator[Dict[str, Any]]:
    """Stream the intact records of a JSONL file one line at a time.

    Same corruption tolerance as :func:`scan_jsonl` (undecodable lines are
    skipped) but never materialises the file — this is the read path
    streaming aggregation uses on 10⁵⁺-run stores.
    """
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def file_sha256(path: Path) -> str:
    """Streaming sha256 hexdigest of a file's bytes (empty-file digest if absent)."""
    digest = hashlib.sha256()
    if path.exists():
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    return digest.hexdigest()


def _shard_label(block: Optional[Dict[str, Any]]) -> str:
    """Human spelling of a manifest ``shard`` block (``"2/4"`` or ``"none"``)."""
    if not block:
        return "none"
    return f"{block.get('index')}/{block.get('count')}"


@dataclass(frozen=True)
class SegmentInfo:
    """What :meth:`ResultStore.merge` learned about one shard segment."""

    directory: Path
    index: int
    count: int
    strategy: str
    run_indices: Tuple[int, ...]
    records: int
    skipped_lines: int
    sha256: str

    def index_entry(self) -> Dict[str, Any]:
        """This segment's row in ``shard_index.json``."""
        return {
            "directory": self.directory.name,
            "index": self.index,
            "records": self.records,
            "first_run_index": self.run_indices[0] if self.run_indices else None,
            "last_run_index": self.run_indices[-1] if self.run_indices else None,
            "skipped_lines": self.skipped_lines,
            "sha256": self.sha256,
        }


@dataclass
class MergeResult:
    """Outcome of :meth:`ResultStore.merge`."""

    directory: Path
    segments: List[SegmentInfo]
    records: int
    total_runs: int
    missing: List[int] = field(default_factory=list)
    errors: int = 0
    merged_sha256: str = ""
    index_path: Optional[Path] = None

    @property
    def complete(self) -> bool:
        return not self.missing


class _AppendFile:
    """One append-only JSONL file behind a persistent, batched-flush handle."""

    def __init__(self, path: Path, flush_every: int) -> None:
        self.path = path
        self.flush_every = flush_every
        self._handle = None
        self._unflushed = 0

    def append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(_dumps(record) + "\n")
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if self._handle is not None and self._unflushed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None


class ResultStore:
    """Disk-backed store for one campaign's manifest, results, and errors.

    Appends go through one persistent file handle per file instead of an
    open/write/close cycle per record.  ``flush_every`` batches the
    flush+fsync behind every N appends: the default of 1 keeps the seed's
    per-record durability, larger values trade at most N-1 tail records on
    a crash for much cheaper appends.  Error appends always flush
    immediately — quarantine records are rare and must survive the crash
    that often follows them.
    """

    def __init__(self, directory: Union[str, Path], *, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise CampaignError("flush_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.directory / MANIFEST_FILE
        self.results_path = self.directory / RESULTS_FILE
        self.errors_path = self.directory / ERRORS_FILE
        self.flush_every = flush_every
        self._results = _AppendFile(self.results_path, flush_every)
        self._errors = _AppendFile(self.errors_path, flush_every=1)
        #: Lines dropped by the most recent :meth:`repair` (per file).
        self.last_repair_skipped: Dict[str, int] = {}

    # -------------------------------------------------------------- manifest
    def write_manifest(
        self,
        spec: CampaignSpec,
        manifests: Sequence[RunManifest],
        shard: Optional[Dict[str, Any]] = None,
    ) -> None:
        payload = {
            "spec": spec.as_dict(),
            "runs": [manifest.as_dict() for manifest in manifests],
        }
        if shard is not None:
            # A shard segment records its claimed assignment explicitly so a
            # merge audits segments against what they owned, not against a
            # re-derived partition.
            payload["shard"] = shard
        self._atomic_write(self.manifest_path, _dumps(payload))

    def load_manifest(self) -> Optional[Dict[str, Any]]:
        if not self.manifest_path.exists():
            return None
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def check_manifest(
        self,
        spec: CampaignSpec,
        manifests: Optional[Sequence[RunManifest]] = None,
        shard: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Refuse to resume into a directory holding a *different* campaign.

        Comparing the expanded run list as well as the spec matters: scenario
        registry *defaults* are resolved into each manifest but absent from
        the spec, so a changed default would otherwise silently mix records
        from two parameterisations in one results file.
        """
        existing = self.load_manifest()
        if existing is None:
            return
        if existing.get("spec") != spec.as_dict():
            raise CampaignError(
                f"campaign directory {self.directory} already holds campaign "
                f"{existing.get('spec', {}).get('name')!r} with a different spec; "
                "pass a fresh directory or the matching spec"
            )
        # Shard identity first: "wrong shard" is the actionable message when
        # both it and the (consequent) run-list difference apply.
        existing_shard = existing.get("shard")
        fresh_shard = (None if shard is None
                       else json.loads(_dumps({"shard": shard}))["shard"])
        if existing_shard != fresh_shard:
            raise CampaignError(
                f"campaign directory {self.directory} holds shard "
                f"{_shard_label(existing_shard)} but this session is running "
                f"shard {_shard_label(fresh_shard)}; resume the matching shard "
                "or pass a fresh directory"
            )
        if manifests is not None:
            # Normalise through the same JSON encoding the manifest was
            # written with so tuples/lists etc. compare equal.
            fresh = json.loads(_dumps({"runs": [m.as_dict() for m in manifests]}))
            if existing.get("runs") != fresh["runs"]:
                raise CampaignError(
                    f"campaign directory {self.directory} was produced with "
                    "different resolved run parameters (a scenario default has "
                    "changed?); pass a fresh directory"
                )

    # --------------------------------------------------------------- results
    def append(self, record: Dict[str, Any]) -> None:
        """Append one completed-run record; durability follows ``flush_every``."""
        self._results.append(record)

    def append_error(self, record: Dict[str, Any]) -> None:
        """Quarantine one failed-run record (always flushed immediately)."""
        self._errors.append(record)

    def flush(self) -> None:
        """Flush and fsync any buffered appends (results and errors)."""
        self._results.flush()
        self._errors.flush()

    def close(self) -> None:
        """Flush and release the append handles (safe to call repeatedly)."""
        self._results.close()
        self._errors.close()

    def records(self) -> List[Dict[str, Any]]:
        """All intact result records on disk (torn/corrupt lines skipped)."""
        self._results.flush()  # make buffered appends visible to the read
        return scan_jsonl(self.results_path)[0]

    def error_records(self) -> List[Dict[str, Any]]:
        """All intact quarantine records on disk."""
        self._errors.flush()
        return scan_jsonl(self.errors_path)[0]

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Stream result records in file order without materialising them.

        This is the aggregation read path for fleet-scale stores: a report
        over 10⁵ runs holds one record at a time.  On a finalized (or
        merged) store file order *is* run-index order; on a live store it is
        completion order, exactly like the file itself.
        """
        self._results.flush()  # make buffered appends visible to the read
        return iter_jsonl(self.results_path)

    def head_records(self, limit: int) -> List[Dict[str, Any]]:
        """The first ``limit`` intact records (bounded peek, never a full read)."""
        return list(itertools.islice(self.iter_records(), limit))

    def completed(self) -> Dict[int, Dict[str, Any]]:
        """Completed records keyed by run index (last write wins)."""
        return {record["run_index"]: record for record in self.records()}

    def repair(self) -> int:
        """Drop undecodable lines from both JSONL files; returns kept results.

        Must run before appending to a file that may end in a torn line from
        an interrupted write — otherwise the next append would concatenate
        onto the fragment and corrupt that record too.  Interior corruption
        (a damaged line *between* intact ones) is skipped, not truncated at:
        every intact record before and after it survives.  Per-file skip
        counts are reported in :attr:`last_repair_skipped`.
        """
        self.close()  # the atomic replace below would orphan open handles
        self.last_repair_skipped = {}
        kept = 0
        for path in (self.results_path, self.errors_path):
            records, skipped = scan_jsonl(path)
            if path.exists():
                body = "".join(_dumps(record) + "\n" for record in records)
                self._atomic_write(path, body)
            if skipped:
                self.last_repair_skipped[path.name] = skipped
            if path == self.results_path:
                kept = len(records)
        return kept

    def reset_errors(self) -> None:
        """Truncate ``errors.jsonl`` (quarantined runs are being re-dispatched)."""
        self._errors.close()
        if self.errors_path.exists():
            self._atomic_write(self.errors_path, "")

    def finalize(self) -> List[Dict[str, Any]]:
        """Rewrite ``results.jsonl`` sorted by run index; return the records."""
        self._results.close()  # the atomic replace would orphan an open handle
        completed = self.completed()
        ordered = [completed[index] for index in sorted(completed)]
        body = "".join(_dumps(record) + "\n" for record in ordered)
        self._atomic_write(self.results_path, body)
        return ordered

    def finalize_errors(self) -> List[Dict[str, Any]]:
        """Rewrite ``errors.jsonl`` sorted by run index; return the records.

        An empty quarantine leaves no file behind, so a clean campaign
        directory looks exactly as it did before quarantine existed.
        """
        self._errors.close()
        by_index = {record["run_index"]: record
                    for record in self.error_records()}
        ordered = [by_index[index] for index in sorted(by_index)]
        if ordered:
            body = "".join(_dumps(record) + "\n" for record in ordered)
            self._atomic_write(self.errors_path, body)
        elif self.errors_path.exists():
            self.errors_path.unlink()
        return ordered

    # ----------------------------------------------------------------- merge
    def merge(
        self,
        segments: Sequence[Union[str, Path]],
        *,
        allow_partial: bool = False,
    ) -> MergeResult:
        """Fold finalized shard segments into this store, byte-identically.

        Every segment must be a campaign directory whose manifest carries a
        ``shard`` block over the *same* spec and partition shape.  Segments
        are read tolerantly (corrupt lines skipped and reported, inputs
        never mutated — per-segment :meth:`repair` is the fix-up path) and
        the merged ``results.jsonl`` is rewritten in run-index order through
        the same canonical encoding the workers used, so a complete merge is
        byte-identical to a serial run of the whole campaign.  The merged
        manifest carries *no* shard block for the same reason.

        Missing shards or missing runs raise (naming the culprits) unless
        ``allow_partial`` — a partial merge still writes everything it has,
        plus a ``shard_index.json`` recording each segment's content hash.
        """
        if not segments:
            raise CampaignError("merge needs at least one shard segment")
        seen_dirs = set()
        parsed: List[Tuple[Path, Dict[str, Any]]] = []
        for segment in segments:
            directory = Path(segment)
            resolved = directory.resolve()
            if resolved == self.directory.resolve():
                raise CampaignError(
                    f"merge output {self.directory} cannot also be a segment")
            if resolved in seen_dirs:
                raise CampaignError(f"segment {directory} listed twice")
            seen_dirs.add(resolved)
            manifest_path = directory / MANIFEST_FILE
            if not manifest_path.exists():
                raise CampaignError(
                    f"segment {directory} has no {MANIFEST_FILE}; "
                    "was the shard run finalized?")
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if not isinstance(manifest.get("shard"), dict):
                raise CampaignError(
                    f"segment {directory} is not a shard segment "
                    "(manifest has no shard block)")
            parsed.append((directory, manifest))

        spec_dict = parsed[0][1]["spec"]
        shape = parsed[0][1]["shard"]
        count = int(shape["count"])
        strategy = str(shape.get("strategy", "contiguous"))
        total_runs = int(shape["total_runs"])
        seen_indices: Dict[int, Path] = {}
        owned: Dict[int, Path] = {}
        runs_by_index: Dict[int, Dict[str, Any]] = {}
        infos: List[SegmentInfo] = []
        merged_records: Dict[int, Dict[str, Any]] = {}
        merged_errors: Dict[int, Dict[str, Any]] = {}
        for directory, manifest in parsed:
            block = manifest["shard"]
            if manifest["spec"] != spec_dict:
                raise CampaignError(
                    f"segment {directory} holds a different campaign spec "
                    f"than {parsed[0][0]}")
            if (int(block["count"]), str(block.get("strategy", "contiguous")),
                    int(block["total_runs"])) != (count, strategy, total_runs):
                raise CampaignError(
                    f"segment {directory} has partition shape "
                    f"{block.get('count')}-way/{block.get('strategy')!r} over "
                    f"{block.get('total_runs')} runs; expected "
                    f"{count}-way/{strategy!r} over {total_runs}")
            index = int(block["index"])
            if index in seen_indices:
                raise CampaignError(
                    f"shard {index}/{count} appears in both "
                    f"{seen_indices[index]} and {directory}")
            seen_indices[index] = directory
            claimed = tuple(int(i) for i in block["run_indices"])
            for run_index in claimed:
                if run_index in owned:
                    raise CampaignError(
                        f"run index {run_index} claimed by both "
                        f"{owned[run_index]} and {directory}")
                owned[run_index] = directory
            for run in manifest.get("runs", []):
                runs_by_index[run["run_index"]] = run
            claimed_set = frozenset(claimed)
            records, skipped = scan_jsonl(directory / RESULTS_FILE)
            segment_count = 0
            for record in records:
                run_index = record["run_index"]
                if run_index not in claimed_set:
                    raise CampaignError(
                        f"segment {directory} contains run index {run_index} "
                        f"outside its claimed assignment (shard {index}/{count})")
                merged_records[run_index] = record
                segment_count += 1
            for error in scan_jsonl(directory / ERRORS_FILE)[0]:
                merged_errors[error["run_index"]] = error
            infos.append(SegmentInfo(
                directory=directory,
                index=index,
                count=count,
                strategy=strategy,
                run_indices=claimed,
                records=segment_count,
                skipped_lines=skipped,
                sha256=file_sha256(directory / RESULTS_FILE),
            ))
        infos.sort(key=lambda info: info.index)

        missing_shards = sorted(set(range(1, count + 1)) - set(seen_indices))
        missing_runs = sorted(set(owned) - set(merged_records))
        # Runs owned by no provided segment are missing too (partial fan-in).
        missing_runs += sorted(set(range(total_runs)) - set(owned))
        missing_runs = sorted(set(missing_runs))
        if not allow_partial:
            if missing_shards:
                raise CampaignError(
                    f"merge is missing shard(s) "
                    f"{', '.join(f'{i}/{count}' for i in missing_shards)}; "
                    "pass their segments or use allow_partial")
            if missing_runs:
                preview = ", ".join(str(i) for i in missing_runs[:8])
                more = "..." if len(missing_runs) > 8 else ""
                raise CampaignError(
                    f"merge is missing {len(missing_runs)} run(s) "
                    f"(run_index {preview}{more}); resume the owning shard(s) "
                    "or use allow_partial")

        existing = self.load_manifest()
        if existing is not None and existing.get("spec") != spec_dict:
            raise CampaignError(
                f"merge output {self.directory} already holds a different "
                "campaign; pass a fresh directory")

        # The merged manifest is the serial manifest: full run list, no
        # shard block — byte-identical to what a serial session writes.
        ordered_runs = [runs_by_index[i] for i in sorted(runs_by_index)]
        self._atomic_write(self.manifest_path,
                           _dumps({"spec": spec_dict, "runs": ordered_runs}))
        self.close()  # the atomic replaces below would orphan open handles
        ordered = [merged_records[i] for i in sorted(merged_records)]
        self._atomic_write(self.results_path,
                           "".join(_dumps(record) + "\n" for record in ordered))
        error_list = [merged_errors[i] for i in sorted(merged_errors)]
        if error_list:
            self._atomic_write(
                self.errors_path,
                "".join(_dumps(record) + "\n" for record in error_list))
        elif self.errors_path.exists():
            self.errors_path.unlink()

        merged_sha = file_sha256(self.results_path)
        index_path = self.directory / SHARD_INDEX_FILE
        index_payload = {
            "schema": SHARD_INDEX_SCHEMA,
            "campaign": spec_dict.get("name"),
            "scenario": spec_dict.get("scenario"),
            "shard_count": count,
            "strategy": strategy,
            "total_runs": total_runs,
            "merged_records": len(ordered),
            "merged_errors": len(error_list),
            "missing_runs": missing_runs,
            "merged_sha256": merged_sha,
            "segments": [info.index_entry() for info in infos],
        }
        self._atomic_write(index_path,
                           json.dumps(index_payload, indent=2, sort_keys=True)
                           + "\n")
        return MergeResult(
            directory=self.directory,
            segments=infos,
            records=len(ordered),
            total_runs=total_runs,
            missing=missing_runs,
            errors=len(error_list),
            merged_sha256=merged_sha,
            index_path=index_path,
        )

    # --------------------------------------------------------------- helpers
    def _atomic_write(self, path: Path, content: str) -> None:
        temporary = path.with_suffix(path.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)


def load_results(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Convenience: the intact records of a campaign directory, in run order."""
    records = ResultStore(directory).completed()
    return [records[index] for index in sorted(records)]


def load_errors(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Convenience: the quarantine records of a campaign directory, in run order."""
    records = {record["run_index"]: record
               for record in ResultStore(directory).error_records()}
    return [records[index] for index in sorted(records)]
