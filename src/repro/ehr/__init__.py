"""Electronic health record (EHR) store with access control.

Section III(i) of the paper notes that "network connectivity in medical
devices and increasing availability of electronic health records (EHR) makes
it possible to develop adaptive algorithms that will be attuned to the unique
parameters of a given patient" -- for example, knowing a patient is a trained
athlete lets the system lower heart-rate alarm thresholds.  Section III(m)
requires EHR access to be mediated by security and privacy policies.

* :class:`~repro.ehr.store.EHRStore` -- per-patient records of demographics,
  history entries, vital-sign baselines, and medications.
* :class:`~repro.ehr.access.AccessPolicy` -- role-based access control with
  an audit log; alarms and supervisors read baselines through it.
"""

from repro.ehr.store import EHRStore, HistoryEntry, PatientRecord
from repro.ehr.access import AccessDecision, AccessPolicy, AccessRequest, Role

__all__ = [
    "EHRStore",
    "HistoryEntry",
    "PatientRecord",
    "AccessDecision",
    "AccessPolicy",
    "AccessRequest",
    "Role",
]
