"""Electronic health record storage.

The store keeps, per patient, a demographic record, timed history entries
(encounters, exercise history, medication administrations), and derived
vital-sign baselines used by patient-adaptive alarm thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.readings import Reading


@dataclass
class HistoryEntry:
    """One timed entry in a patient's history."""

    time: float
    category: str
    description: str
    data: Dict[str, Any] = field(default_factory=dict)


@dataclass
class PatientRecord:
    """A patient's EHR record."""

    patient_id: str
    demographics: Dict[str, Any] = field(default_factory=dict)
    history: List[HistoryEntry] = field(default_factory=list)
    medications: List[str] = field(default_factory=list)
    vital_baselines: Dict[str, float] = field(default_factory=dict)

    def add_history(self, entry: HistoryEntry) -> None:
        self.history.append(entry)
        self.history.sort(key=lambda e: e.time)

    def history_in_category(self, category: str) -> List[HistoryEntry]:
        return [entry for entry in self.history if entry.category == category]

    @property
    def is_athlete(self) -> bool:
        """Whether the exercise history marks this patient as highly trained."""
        if self.demographics.get("is_athlete"):
            return True
        exercise = self.history_in_category("exercise")
        return len(exercise) >= 3


class EHRStore:
    """In-memory EHR backing store."""

    def __init__(self) -> None:
        self._records: Dict[str, PatientRecord] = {}

    # ------------------------------------------------------------------ CRUD
    def admit(self, patient_id: str, demographics: Optional[Dict[str, Any]] = None) -> PatientRecord:
        """Create (or return the existing) record for ``patient_id``."""
        if patient_id not in self._records:
            self._records[patient_id] = PatientRecord(
                patient_id=patient_id, demographics=dict(demographics or {})
            )
        elif demographics:
            self._records[patient_id].demographics.update(demographics)
        return self._records[patient_id]

    def admit_from_parameters(self, parameters) -> PatientRecord:
        """Admit a patient from :class:`repro.patient.population.PatientParameters`."""
        record = self.admit(parameters.patient_id, parameters.as_record())
        record.vital_baselines.update(
            {
                "heart_rate_bpm": parameters.baseline_heart_rate_bpm,
                "respiratory_rate_bpm": parameters.baseline_respiratory_rate_bpm,
                "spo2_percent": parameters.baseline_spo2,
            }
        )
        if parameters.is_athlete:
            record.add_history(HistoryEntry(0.0, "exercise", "endurance training history"))
            record.add_history(HistoryEntry(0.0, "exercise", "competition record"))
            record.add_history(HistoryEntry(0.0, "exercise", "resting bradycardia noted"))
        return record

    def get(self, patient_id: str) -> PatientRecord:
        if patient_id not in self._records:
            raise KeyError(f"no EHR record for patient {patient_id!r}")
        return self._records[patient_id]

    def __contains__(self, patient_id: str) -> bool:
        return patient_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def patient_ids(self) -> List[str]:
        return sorted(self._records)

    # --------------------------------------------------------------- history
    def record_observation(self, patient_id: str, time: float, vital: str, value: float) -> None:
        """Append a vital-sign observation used to learn per-patient baselines."""
        record = self.get(patient_id)
        record.add_history(
            HistoryEntry(time=time, category="observation", description=vital, data={"value": value})
        )

    def record_reading(self, patient_id: str, vital: str, reading: Reading) -> None:
        """Record a device :class:`Reading` natively as an observation.

        The reading's own sample time stamps the entry; invalid readings
        (probe-off, lead-off artefacts) are not observations and are skipped
        so they cannot poison learned baselines.
        """
        if not reading.valid:
            return
        self.record_observation(patient_id, reading.time, vital, float(reading.value))

    def record_medication(self, patient_id: str, time: float, medication: str, dose_mg: float) -> None:
        record = self.get(patient_id)
        record.medications.append(medication)
        record.add_history(
            HistoryEntry(time=time, category="medication", description=medication, data={"dose_mg": dose_mg})
        )

    # ------------------------------------------------------------- baselines
    def baseline(self, patient_id: str, vital: str, default: Optional[float] = None) -> Optional[float]:
        """Patient-specific baseline for ``vital``.

        Prefers an explicit stored baseline; otherwise the median of recorded
        observations of that vital; otherwise ``default``.
        """
        record = self.get(patient_id)
        if vital in record.vital_baselines:
            return record.vital_baselines[vital]
        observations = [
            entry.data["value"]
            for entry in record.history_in_category("observation")
            if entry.description == vital and "value" in entry.data
        ]
        if observations:
            return float(np.median(observations))
        return default

    def set_baseline(self, patient_id: str, vital: str, value: float) -> None:
        self.get(patient_id).vital_baselines[vital] = float(value)
