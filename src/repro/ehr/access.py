"""Role-based access control and auditing for the EHR store.

Section III(m) of the paper notes that extensive security and privacy
solutions exist for electronic health records and are being extended to
MCPS.  This module provides the EHR side of that story: requests are made by
principals acting in roles, checked against a policy, and every decision is
appended to an audit log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class Role(enum.Enum):
    """Clinical and technical roles that may request EHR access."""

    PHYSICIAN = "physician"
    NURSE = "nurse"
    DEVICE_SUPERVISOR = "device_supervisor"
    RESEARCHER = "researcher"
    ADMINISTRATOR = "administrator"


#: Record categories a role may read by default.  Writes are controlled
#: separately; researchers only see de-identified aggregates.
DEFAULT_READ_PERMISSIONS: Dict[Role, Set[str]] = {
    Role.PHYSICIAN: {"demographics", "history", "medications", "baselines"},
    Role.NURSE: {"demographics", "history", "medications", "baselines"},
    Role.DEVICE_SUPERVISOR: {"baselines", "medications"},
    Role.RESEARCHER: set(),
    Role.ADMINISTRATOR: {"demographics"},
}

DEFAULT_WRITE_PERMISSIONS: Dict[Role, Set[str]] = {
    Role.PHYSICIAN: {"history", "medications", "baselines"},
    Role.NURSE: {"history", "medications"},
    Role.DEVICE_SUPERVISOR: {"history"},
    Role.RESEARCHER: set(),
    Role.ADMINISTRATOR: set(),
}


@dataclass(frozen=True)
class AccessRequest:
    """A request by ``principal`` (acting as ``role``) to access a record category."""

    principal: str
    role: Role
    patient_id: str
    category: str
    write: bool = False
    purpose: str = ""


@dataclass(frozen=True)
class AccessDecision:
    request: AccessRequest
    allowed: bool
    reason: str
    time: float = 0.0


class AccessPolicy:
    """Role-based EHR access policy with consent overrides and an audit log."""

    def __init__(
        self,
        read_permissions: Optional[Dict[Role, Set[str]]] = None,
        write_permissions: Optional[Dict[Role, Set[str]]] = None,
    ) -> None:
        self._read = {role: set(cats) for role, cats in (read_permissions or DEFAULT_READ_PERMISSIONS).items()}
        self._write = {role: set(cats) for role, cats in (write_permissions or DEFAULT_WRITE_PERMISSIONS).items()}
        self._denied_patients: Dict[str, Set[str]] = {}  # patient -> principals denied by consent
        self.audit_log: List[AccessDecision] = []

    # ----------------------------------------------------------- adjustments
    def grant(self, role: Role, category: str, *, write: bool = False) -> None:
        table = self._write if write else self._read
        table.setdefault(role, set()).add(category)

    def revoke(self, role: Role, category: str, *, write: bool = False) -> None:
        table = self._write if write else self._read
        table.setdefault(role, set()).discard(category)

    def withdraw_consent(self, patient_id: str, principal: str) -> None:
        """Patient-specific consent withdrawal overriding role permissions."""
        self._denied_patients.setdefault(patient_id, set()).add(principal)

    # --------------------------------------------------------------- checking
    def check(self, request: AccessRequest, *, time: float = 0.0) -> AccessDecision:
        """Evaluate a request, append the decision to the audit log, return it."""
        decision = self._evaluate(request, time)
        self.audit_log.append(decision)
        return decision

    def _evaluate(self, request: AccessRequest, time: float) -> AccessDecision:
        denied = self._denied_patients.get(request.patient_id, set())
        if request.principal in denied:
            return AccessDecision(request, False, "patient withdrew consent for this principal", time)
        table = self._write if request.write else self._read
        allowed_categories = table.get(request.role, set())
        if request.category not in allowed_categories:
            verb = "write" if request.write else "read"
            return AccessDecision(
                request, False, f"role {request.role.value} may not {verb} {request.category}", time
            )
        return AccessDecision(request, True, "permitted by role policy", time)

    # ------------------------------------------------------------------ audit
    def denials(self) -> List[AccessDecision]:
        return [decision for decision in self.audit_log if not decision.allowed]

    def accesses_for_patient(self, patient_id: str) -> List[AccessDecision]:
        return [d for d in self.audit_log if d.request.patient_id == patient_id]
