"""Plain-text table formatting for benchmark output.

Every benchmark prints the rows of the experiment it reproduces through
:func:`format_table`, so EXPERIMENTS.md and the bench output use the same
representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: Optional[str] = None

    def add_row(self, *values: Any) -> "Table":
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))
        return self

    def add_record(self, record: Dict[str, Any]) -> "Table":
        self.rows.append([record.get(column, "") for column in self.columns])
        return self

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, notes=self.notes)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    notes: Optional[str] = None,
) -> str:
    """Render an ASCII table with a title line and aligned columns."""
    formatted_rows = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [f"== {title} ==", render_row(list(columns)), separator]
    lines.extend(render_row(row) for row in formatted_rows)
    if notes:
        lines.append(f"notes: {notes}")
    return "\n".join(lines)
