"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarise(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (which must be non-empty)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("values must be non-empty")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
    )


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    statistic=np.mean,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic`` of ``values``."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("values must be non-empty")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if resamples <= 0:
        raise ValueError("resamples must be positive")
    rng = np.random.default_rng(seed)
    stats = np.empty(resamples)
    for i in range(resamples):
        sample = rng.choice(array, size=array.size, replace=True)
        stats[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(stats, alpha)), float(np.quantile(stats, 1.0 - alpha))


def paired_difference(
    baseline: Sequence[float],
    treatment: Sequence[float],
) -> Dict[str, float]:
    """Paired comparison (same workload under two configurations).

    Returns the mean difference (treatment - baseline), the ratio of means,
    and the fraction of pairs in which the treatment improved (was lower).
    """
    a = np.asarray(list(baseline), dtype=float)
    b = np.asarray(list(treatment), dtype=float)
    if a.size != b.size:
        raise ValueError("paired samples must have equal length")
    if a.size == 0:
        raise ValueError("samples must be non-empty")
    differences = b - a
    baseline_mean = float(a.mean())
    ratio = float(b.mean() / baseline_mean) if baseline_mean != 0 else float("inf")
    return {
        "mean_difference": float(differences.mean()),
        "ratio_of_means": ratio,
        "fraction_improved": float(np.mean(b < a)),
    }
