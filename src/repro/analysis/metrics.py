"""Safety and alarm metrics shared by the experiment benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class SafetyOutcome:
    """Per-patient safety outcome summarised across a population run."""

    patients: int = 0
    harmed: int = 0
    respiratory_failure_events: int = 0
    total_time_in_danger_s: float = 0.0
    total_drug_mg: float = 0.0
    mean_pain: float = 0.0
    supervisor_stops: int = 0

    @property
    def harm_rate(self) -> float:
        return self.harmed / self.patients if self.patients else 0.0

    @property
    def mean_time_in_danger_s(self) -> float:
        return self.total_time_in_danger_s / self.patients if self.patients else 0.0

    @property
    def mean_drug_mg(self) -> float:
        return self.total_drug_mg / self.patients if self.patients else 0.0


def aggregate_outcomes(results: Iterable) -> SafetyOutcome:
    """Aggregate :class:`repro.core.loop.PCARunResult`-like records.

    Accepts any objects exposing ``harmed``, ``respiratory_failure_events``,
    ``time_below_spo2_90_s``, ``total_drug_delivered_mg``, ``mean_pain_level``
    and ``supervisor_stops`` attributes.
    """
    outcome = SafetyOutcome()
    pains: List[float] = []
    for result in results:
        outcome.patients += 1
        outcome.harmed += 1 if result.harmed else 0
        outcome.respiratory_failure_events += result.respiratory_failure_events
        outcome.total_time_in_danger_s += result.time_below_spo2_90_s
        outcome.total_drug_mg += result.total_drug_delivered_mg
        outcome.supervisor_stops += result.supervisor_stops
        pains.append(result.mean_pain_level)
    if pains:
        outcome.mean_pain = sum(pains) / len(pains)
    return outcome


@dataclass
class AlarmConfusion:
    """Confusion matrix of alarms against ground-truth deterioration episodes."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    true_negatives: int = 0

    @property
    def total_alarms(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def sensitivity(self) -> float:
        detected = self.true_positives + self.false_negatives
        return self.true_positives / detected if detected else 1.0

    @property
    def precision(self) -> float:
        return self.true_positives / self.total_alarms if self.total_alarms else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of raised alarms that are false (1 - precision)."""
        return 1.0 - self.precision

    def merged_with(self, other: "AlarmConfusion") -> "AlarmConfusion":
        return AlarmConfusion(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            true_negatives=self.true_negatives + other.true_negatives,
        )


def classify_alarms(
    alarm_times: Sequence[float],
    episodes: Sequence[Tuple[float, float]],
    *,
    detection_lead_s: float = 0.0,
) -> AlarmConfusion:
    """Classify alarms against ground-truth deterioration episodes.

    An alarm is a true positive if it falls inside an episode interval
    (optionally extended ``detection_lead_s`` earlier, to credit early
    warnings); otherwise it is a false positive.  An episode with no alarm
    inside its (extended) window is a false negative.
    """
    if detection_lead_s < 0:
        raise ValueError("detection_lead_s must be non-negative")
    confusion = AlarmConfusion()
    matched_episodes = set()
    for alarm in alarm_times:
        matched = False
        for index, (start, end) in enumerate(episodes):
            if start - detection_lead_s <= alarm <= end:
                matched = True
                matched_episodes.add(index)
                break
        if matched:
            confusion.true_positives += 1
        else:
            confusion.false_positives += 1
    confusion.false_negatives = len(episodes) - len(matched_episodes)
    return confusion


def time_weighted_mean(samples: Sequence[Tuple[float, float]], end_time: Optional[float] = None) -> float:
    """Time-weighted mean of a step signal given ``(time, value)`` samples."""
    if not samples:
        raise ValueError("samples must be non-empty")
    total = 0.0
    duration = 0.0
    for (t0, v0), (t1, _) in zip(samples, samples[1:]):
        total += v0 * (t1 - t0)
        duration += t1 - t0
    if end_time is not None and end_time > samples[-1][0]:
        total += samples[-1][1] * (end_time - samples[-1][0])
        duration += end_time - samples[-1][0]
    if duration == 0:
        return float(samples[-1][1])
    return total / duration


def detection_latency(
    event_time: float,
    response_times: Sequence[float],
) -> Optional[float]:
    """Latency from an event to the first response at or after it (None if never)."""
    later = [t for t in response_times if t >= event_time]
    return min(later) - event_time if later else None
