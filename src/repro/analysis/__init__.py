"""Experiment analysis: metrics, statistics, and report-table formatting."""

from repro.analysis.metrics import (
    AlarmConfusion,
    SafetyOutcome,
    aggregate_outcomes,
    classify_alarms,
)
from repro.analysis.stats import bootstrap_ci, paired_difference, summarise
from repro.analysis.tables import Table, format_table

__all__ = [
    "AlarmConfusion",
    "SafetyOutcome",
    "aggregate_outcomes",
    "classify_alarms",
    "bootstrap_ci",
    "paired_difference",
    "summarise",
    "Table",
    "format_table",
]
