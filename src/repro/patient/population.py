"""Patient population sampling.

The paper stresses "the staggering range of patient responses to the same
treatment" (Section III(i)) and that "effects of each treatment can differ
widely from patient to patient" (Section III(g)).  Experiments therefore run
over populations of patients whose weight, opioid clearance, opioid
sensitivity, and baseline vital signs vary.  :class:`PatientPopulation`
samples such parameter sets reproducibly, including special sub-populations
(opioid-sensitive patients, athletes with low baseline heart rates) that
drive particular experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.patient.pharmacodynamics import PDParameters
from repro.patient.pharmacokinetics import PKParameters
from repro.patient.vitals import VitalSignsParameters


@dataclass(frozen=True)
class PatientParameters:
    """Everything needed to instantiate a :class:`repro.patient.model.PatientModel`."""

    patient_id: str
    weight_kg: float
    age_years: float
    opioid_sensitivity: float
    clearance_multiplier: float
    baseline_heart_rate_bpm: float
    baseline_respiratory_rate_bpm: float
    baseline_spo2: float
    initial_pain_level: float
    is_athlete: bool = False
    tags: tuple = field(default_factory=tuple)

    def validate(self) -> None:
        if self.weight_kg <= 0:
            raise ValueError("weight_kg must be positive")
        if self.age_years <= 0:
            raise ValueError("age_years must be positive")
        if self.opioid_sensitivity <= 0:
            raise ValueError("opioid_sensitivity must be positive")
        if self.clearance_multiplier <= 0:
            raise ValueError("clearance_multiplier must be positive")
        if not 0 < self.baseline_spo2 <= 100:
            raise ValueError("baseline_spo2 must be in (0, 100]")
        if not 0 <= self.initial_pain_level <= 10:
            raise ValueError("initial_pain_level must be in [0, 10]")

    # ------------------------------------------------------------- factories
    def pk_parameters(self, base: Optional[PKParameters] = None) -> PKParameters:
        base = base or PKParameters()
        return base.scaled_for_weight(self.weight_kg, self.clearance_multiplier)

    def pd_parameters(self, base: Optional[PDParameters] = None) -> PDParameters:
        base = base or PDParameters()
        return base.with_sensitivity(self.opioid_sensitivity)

    def vitals_parameters(self, base: Optional[VitalSignsParameters] = None) -> VitalSignsParameters:
        base = base or VitalSignsParameters()
        return replace(
            base,
            baseline_heart_rate_bpm=self.baseline_heart_rate_bpm,
            baseline_respiratory_rate_bpm=self.baseline_respiratory_rate_bpm,
            baseline_spo2=self.baseline_spo2,
            initial_pain_level=self.initial_pain_level,
        )

    def as_record(self) -> Dict[str, object]:
        """Flat dictionary used when storing the patient in the EHR."""
        return {
            "patient_id": self.patient_id,
            "weight_kg": self.weight_kg,
            "age_years": self.age_years,
            "opioid_sensitivity": self.opioid_sensitivity,
            "clearance_multiplier": self.clearance_multiplier,
            "baseline_heart_rate_bpm": self.baseline_heart_rate_bpm,
            "baseline_respiratory_rate_bpm": self.baseline_respiratory_rate_bpm,
            "baseline_spo2": self.baseline_spo2,
            "initial_pain_level": self.initial_pain_level,
            "is_athlete": self.is_athlete,
            "tags": list(self.tags),
        }


DEFAULT_PATIENT = PatientParameters(
    patient_id="default",
    weight_kg=70.0,
    age_years=45.0,
    opioid_sensitivity=1.0,
    clearance_multiplier=1.0,
    baseline_heart_rate_bpm=72.0,
    baseline_respiratory_rate_bpm=14.0,
    baseline_spo2=98.0,
    initial_pain_level=7.0,
)


class PatientPopulation:
    """Samples reproducible populations of :class:`PatientParameters`."""

    def __init__(self, rng: Optional[np.random.Generator] = None, seed: int = 0) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def sample(self, count: int, prefix: str = "patient", sensitive_fraction: float = 0.15,
               athlete_fraction: float = 0.1) -> List[PatientParameters]:
        """Sample ``count`` patients.

        ``sensitive_fraction`` of the population is drawn with elevated opioid
        sensitivity (the patients an average-programmed PCA limit fails to
        protect); ``athlete_fraction`` with athletic baselines (low resting
        heart rate, the false-alarm drivers of experiment E4).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if not 0 <= sensitive_fraction <= 1 or not 0 <= athlete_fraction <= 1:
            raise ValueError("fractions must be within [0, 1]")
        if sensitive_fraction + athlete_fraction > 1:
            # A silent pass here truncates the athlete band (the roll can
            # never exceed 1), skewing the stratification with no error.
            raise ValueError(
                "sensitive_fraction + athlete_fraction must not exceed 1 "
                f"(got {sensitive_fraction} + {athlete_fraction})"
            )
        patients = []
        for index in range(count):
            roll = self._rng.random()
            is_sensitive = roll < sensitive_fraction
            is_athlete = sensitive_fraction <= roll < sensitive_fraction + athlete_fraction
            patients.append(self._sample_one(f"{prefix}-{index:03d}", is_sensitive, is_athlete))
        return patients

    def sample_one(self, patient_id: str, sensitive: bool = False, athlete: bool = False) -> PatientParameters:
        return self._sample_one(patient_id, sensitive, athlete)

    def _sample_one(self, patient_id: str, sensitive: bool, athlete: bool) -> PatientParameters:
        rng = self._rng
        weight = float(np.clip(rng.normal(78.0, 16.0), 45.0, 140.0))
        age = float(np.clip(rng.normal(55.0, 16.0), 18.0, 92.0))
        clearance = float(np.clip(rng.lognormal(mean=0.0, sigma=0.25), 0.5, 2.0))
        sensitivity = float(np.clip(rng.lognormal(mean=0.0, sigma=0.3), 0.4, 2.5))
        if sensitive:
            sensitivity = float(np.clip(sensitivity * rng.uniform(1.6, 2.4), 1.6, 3.0))
            clearance = float(np.clip(clearance * rng.uniform(0.6, 0.85), 0.4, 1.0))
        baseline_hr = float(np.clip(rng.normal(74.0, 9.0), 52.0, 105.0))
        baseline_rr = float(np.clip(rng.normal(14.0, 2.0), 9.0, 22.0))
        baseline_spo2 = float(np.clip(rng.normal(97.5, 1.0), 92.0, 100.0))
        pain = float(np.clip(rng.normal(7.0, 1.5), 3.0, 10.0))
        tags: List[str] = []
        if sensitive:
            tags.append("opioid_sensitive")
        if athlete:
            baseline_hr = float(np.clip(rng.normal(48.0, 4.0), 38.0, 58.0))
            baseline_rr = float(np.clip(rng.normal(11.0, 1.5), 8.0, 14.0))
            tags.append("athlete")
        parameters = PatientParameters(
            patient_id=patient_id,
            weight_kg=weight,
            age_years=age,
            opioid_sensitivity=sensitivity,
            clearance_multiplier=clearance,
            baseline_heart_rate_bpm=baseline_hr,
            baseline_respiratory_rate_bpm=baseline_rr,
            baseline_spo2=baseline_spo2,
            initial_pain_level=pain,
            is_athlete=athlete,
            tags=tuple(tags),
        )
        parameters.validate()
        return parameters

    def sample_cohorts(self, count: int) -> Dict[str, List[PatientParameters]]:
        """Sample and bucket patients by sub-population for stratified reporting."""
        patients = self.sample(count)
        cohorts: Dict[str, List[PatientParameters]] = {"typical": [], "opioid_sensitive": [], "athlete": []}
        for patient in patients:
            if "opioid_sensitive" in patient.tags:
                cohorts["opioid_sensitive"].append(patient)
            elif patient.is_athlete:
                cohorts["athlete"].append(patient)
            else:
                cohorts["typical"].append(patient)
        return cohorts
