"""Pharmacodynamic (PD) model: opioid effect on respiratory drive and pain.

The PD stage converts the plasma concentration computed by
:class:`repro.patient.pharmacokinetics.TwoCompartmentPK` into clinical
effects.  Two effects matter for the closed-loop PCA scenario of the paper:

* *Analgesia* -- pain relief, the therapeutic goal, modelled as a Hill
  (sigmoid Emax) function of effect-site concentration.
* *Respiratory depression* -- the hazard the supervisor must prevent,
  modelled as a Hill function that scales down the patient's respiratory
  drive; a sufficiently depressed drive drags down respiratory rate and,
  with a lag, SpO2.

An effect-site compartment with first-order equilibration (rate ``ke0``)
introduces the clinically important delay between plasma concentration and
effect, which is one of the timing terms the supervisor's delay budget must
cover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PDParameters:
    """Hill-model pharmacodynamic parameters.

    ec50_respiratory_mg_per_l:
        Effect-site concentration producing 50% of maximal respiratory
        depression.  Lower values mean a more opioid-sensitive patient.
    hill_respiratory:
        Steepness of the respiratory depression curve.
    ec50_analgesia_mg_per_l / hill_analgesia:
        Same for pain relief; analgesia saturates at lower concentrations
        than dangerous respiratory depression in a typical patient, which is
        exactly why PCA dosing works at all.
    ke0_per_min:
        Plasma <-> effect-site equilibration rate constant.
    max_respiratory_depression:
        Fraction of respiratory drive removed at infinite concentration
        (kept slightly below 1 so the ODEs remain well behaved).
    """

    ec50_respiratory_mg_per_l: float = 0.045
    hill_respiratory: float = 2.5
    ec50_analgesia_mg_per_l: float = 0.018
    hill_analgesia: float = 2.0
    ke0_per_min: float = 0.07
    max_respiratory_depression: float = 0.98

    def validate(self) -> None:
        if self.ec50_respiratory_mg_per_l <= 0:
            raise ValueError("ec50_respiratory_mg_per_l must be positive")
        if self.ec50_analgesia_mg_per_l <= 0:
            raise ValueError("ec50_analgesia_mg_per_l must be positive")
        if self.hill_respiratory <= 0 or self.hill_analgesia <= 0:
            raise ValueError("Hill coefficients must be positive")
        if self.ke0_per_min <= 0:
            raise ValueError("ke0_per_min must be positive")
        if not 0 < self.max_respiratory_depression <= 1:
            raise ValueError("max_respiratory_depression must be in (0, 1]")

    def with_sensitivity(self, sensitivity: float) -> "PDParameters":
        """Scale EC50s for a patient ``sensitivity`` (>1 means more sensitive)."""
        if sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        return PDParameters(
            ec50_respiratory_mg_per_l=self.ec50_respiratory_mg_per_l / sensitivity,
            hill_respiratory=self.hill_respiratory,
            ec50_analgesia_mg_per_l=self.ec50_analgesia_mg_per_l / sensitivity,
            hill_analgesia=self.hill_analgesia,
            ke0_per_min=self.ke0_per_min,
            max_respiratory_depression=self.max_respiratory_depression,
        )


def hill(concentration: float, ec50: float, coefficient: float) -> float:
    """Sigmoid Emax (Hill) response in [0, 1)."""
    if concentration <= 0:
        return 0.0
    ratio = (concentration / ec50) ** coefficient
    return ratio / (1.0 + ratio)


class RespiratoryDepressionPD:
    """Effect-site PD model for respiratory depression and analgesia."""

    def __init__(self, parameters: PDParameters) -> None:
        parameters.validate()
        self.parameters = parameters
        self._effect_site_mg_per_l = 0.0

    @property
    def effect_site_concentration_mg_per_l(self) -> float:
        return self._effect_site_mg_per_l

    def reset(self) -> None:
        self._effect_site_mg_per_l = 0.0

    def advance(self, dt_min: float, plasma_concentration_mg_per_l: float) -> float:
        """Advance the effect-site compartment ``dt_min`` minutes.

        Uses the exact solution of the first-order equilibration ODE for a
        plasma concentration held constant over the step, and returns the new
        effect-site concentration.
        """
        if dt_min < 0:
            raise ValueError("dt_min must be non-negative")
        if plasma_concentration_mg_per_l < 0:
            raise ValueError("plasma concentration must be non-negative")
        if dt_min == 0:
            return self._effect_site_mg_per_l
        decay = np.exp(-self.parameters.ke0_per_min * dt_min)
        self._effect_site_mg_per_l = (
            plasma_concentration_mg_per_l
            + (self._effect_site_mg_per_l - plasma_concentration_mg_per_l) * decay
        )
        return self._effect_site_mg_per_l

    # ---------------------------------------------------------------- effects
    def respiratory_depression(self, effect_site: float = None) -> float:
        """Fraction of respiratory drive suppressed, in [0, max_depression]."""
        concentration = self._effect_site_mg_per_l if effect_site is None else effect_site
        return self.parameters.max_respiratory_depression * hill(
            concentration,
            self.parameters.ec50_respiratory_mg_per_l,
            self.parameters.hill_respiratory,
        )

    def respiratory_drive(self, effect_site: float = None) -> float:
        """Remaining respiratory drive in [1 - max_depression, 1]."""
        return 1.0 - self.respiratory_depression(effect_site)

    def analgesia(self, effect_site: float = None) -> float:
        """Fraction of pain relieved, in [0, 1)."""
        concentration = self._effect_site_mg_per_l if effect_site is None else effect_site
        return hill(
            concentration,
            self.parameters.ec50_analgesia_mg_per_l,
            self.parameters.hill_analgesia,
        )

    def concentration_for_depression(self, depression_fraction: float) -> float:
        """Invert the respiratory Hill curve: concentration giving the fraction.

        Useful for computing safety margins and for calibrating experiment
        workloads (e.g. "what bolus schedule drives this patient to 50%
        depression?").
        """
        if not 0 <= depression_fraction < self.parameters.max_respiratory_depression:
            raise ValueError(
                "depression_fraction must be within "
                f"[0, {self.parameters.max_respiratory_depression})"
            )
        if depression_fraction == 0:
            return 0.0
        normalised = depression_fraction / self.parameters.max_respiratory_depression
        ratio = normalised / (1.0 - normalised)
        return self.parameters.ec50_respiratory_mg_per_l * ratio ** (1.0 / self.parameters.hill_respiratory)
