"""Patient modeling and simulation.

The paper (Section III(h)) calls for patient models covering drug absorption
and the relationship between drug dose/concentration and vital signs, citing
pharmacokinetic models from the anaesthesia literature (Mazoit et al.).  This
package implements:

* :class:`~repro.patient.pharmacokinetics.TwoCompartmentPK` -- a standard
  two-compartment pharmacokinetic model of opioid (morphine-like) infusion.
* :class:`~repro.patient.pharmacodynamics.RespiratoryDepressionPD` -- an
  effect-site Hill model mapping drug concentration to respiratory drive.
* :class:`~repro.patient.vitals.VitalSignsModel` -- SpO2, heart rate, and
  respiratory-rate dynamics driven by the PD output, pain level, and
  measurement noise/artefacts.
* :class:`~repro.patient.map_model.ArterialPressureModel` -- mean arterial
  pressure with the bed-height measurement artefact used by the
  mixed-criticality scenario (Section III(l)).
* :class:`~repro.patient.population.PatientPopulation` -- sampling of
  patient parameter sets (weight, age, opioid sensitivity, baseline vitals).
* :class:`~repro.patient.model.PatientModel` -- the composite model wired
  into the simulation kernel; this is the "Patient Model" box of Figure 1.
"""

from repro.patient.pharmacokinetics import PKParameters, TwoCompartmentPK
from repro.patient.pharmacodynamics import PDParameters, RespiratoryDepressionPD
from repro.patient.vitals import VitalSigns, VitalSignsModel, VitalSignsParameters
from repro.patient.map_model import ArterialPressureModel
from repro.patient.population import PatientParameters, PatientPopulation
from repro.patient.model import PatientModel

__all__ = [
    "PKParameters",
    "TwoCompartmentPK",
    "PDParameters",
    "RespiratoryDepressionPD",
    "VitalSigns",
    "VitalSignsModel",
    "VitalSignsParameters",
    "ArterialPressureModel",
    "PatientParameters",
    "PatientPopulation",
    "PatientModel",
]
