"""Vital-sign dynamics: respiratory rate, SpO2, and heart rate.

This module closes the physiological loop of Figure 1: the PD model's
respiratory drive determines respiratory rate; sustained hypoventilation
reduces blood oxygen saturation (SpO2) with a physiological lag; hypoxia and
pain elevate heart rate.  The outputs feed the pulse oximeter and other
monitoring devices in :mod:`repro.devices`, which add their own measurement
artefacts on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class VitalSigns:
    """A snapshot of the patient's true (un-measured) vital signs."""

    respiratory_rate_bpm: float
    spo2_percent: float
    heart_rate_bpm: float
    pain_level: float

    def as_dict(self) -> dict:
        return {
            "respiratory_rate_bpm": self.respiratory_rate_bpm,
            "spo2_percent": self.spo2_percent,
            "heart_rate_bpm": self.heart_rate_bpm,
            "pain_level": self.pain_level,
        }


@dataclass
class VitalSignsParameters:
    """Baseline physiology and coupling constants.

    baseline_respiratory_rate_bpm / baseline_heart_rate_bpm / baseline_spo2:
        The patient's resting values (athletes have low heart rates; the
        adaptive-alarm experiment E4 exploits this).
    spo2_time_constant_min:
        Lag with which SpO2 follows effective ventilation; oxygen reserves
        mean desaturation is not instantaneous.
    hypoventilation_threshold:
        Fraction of baseline ventilation below which SpO2 begins to fall.
    pain_decay_per_min:
        Natural decay of post-operative pain level (pain is on a 0-10 scale).
    """

    baseline_respiratory_rate_bpm: float = 14.0
    baseline_heart_rate_bpm: float = 72.0
    baseline_spo2: float = 98.0
    min_spo2: float = 55.0
    spo2_time_constant_min: float = 2.5
    hypoventilation_threshold: float = 0.6
    heart_rate_hypoxia_gain: float = 1.2
    heart_rate_pain_gain: float = 2.0
    pain_decay_per_min: float = 0.004
    initial_pain_level: float = 7.0

    def validate(self) -> None:
        if self.baseline_respiratory_rate_bpm <= 0:
            raise ValueError("baseline_respiratory_rate_bpm must be positive")
        if self.baseline_heart_rate_bpm <= 0:
            raise ValueError("baseline_heart_rate_bpm must be positive")
        if not 0 < self.baseline_spo2 <= 100:
            raise ValueError("baseline_spo2 must be in (0, 100]")
        if self.min_spo2 <= 0 or self.min_spo2 >= self.baseline_spo2:
            raise ValueError("min_spo2 must be positive and below baseline_spo2")
        if self.spo2_time_constant_min <= 0:
            raise ValueError("spo2_time_constant_min must be positive")
        if not 0 < self.hypoventilation_threshold <= 1:
            raise ValueError("hypoventilation_threshold must be in (0, 1]")
        if not 0 <= self.initial_pain_level <= 10:
            raise ValueError("initial_pain_level must be in [0, 10]")


class VitalSignsModel:
    """Continuous-time vital-sign dynamics, advanced in discrete steps."""

    def __init__(self, parameters: Optional[VitalSignsParameters] = None) -> None:
        self.parameters = parameters or VitalSignsParameters()
        self.parameters.validate()
        self._spo2 = self.parameters.baseline_spo2
        self._pain = self.parameters.initial_pain_level
        self._respiratory_rate = self.parameters.baseline_respiratory_rate_bpm
        self._heart_rate = self.parameters.baseline_heart_rate_bpm

    # ----------------------------------------------------------------- state
    @property
    def state(self) -> VitalSigns:
        return VitalSigns(
            respiratory_rate_bpm=self._respiratory_rate,
            spo2_percent=self._spo2,
            heart_rate_bpm=self._heart_rate,
            pain_level=self._pain,
        )

    def reset(self) -> None:
        self._spo2 = self.parameters.baseline_spo2
        self._pain = self.parameters.initial_pain_level
        self._respiratory_rate = self.parameters.baseline_respiratory_rate_bpm
        self._heart_rate = self.parameters.baseline_heart_rate_bpm

    # ------------------------------------------------------------- dynamics
    def advance(self, dt_min: float, respiratory_drive: float, analgesia: float) -> VitalSigns:
        """Advance ``dt_min`` minutes given the PD model's outputs.

        respiratory_drive:
            Remaining fraction of respiratory drive in [0, 1].
        analgesia:
            Fraction of pain relieved in [0, 1).
        """
        if dt_min < 0:
            raise ValueError("dt_min must be non-negative")
        if not 0 <= respiratory_drive <= 1.0001:
            raise ValueError(f"respiratory_drive must be in [0, 1], got {respiratory_drive!r}")
        if not 0 <= analgesia <= 1.0001:
            raise ValueError(f"analgesia must be in [0, 1], got {analgesia!r}")
        if dt_min == 0:
            return self.state

        p = self.parameters
        # Respiratory rate tracks drive directly (fast dynamics relative to dt).
        self._respiratory_rate = p.baseline_respiratory_rate_bpm * respiratory_drive

        # Effective ventilation relative to baseline; below the hypoventilation
        # threshold SpO2 relaxes toward a depressed target, above it SpO2
        # recovers toward baseline.
        ventilation_fraction = respiratory_drive
        if ventilation_fraction >= p.hypoventilation_threshold:
            spo2_target = p.baseline_spo2
        else:
            deficit = (p.hypoventilation_threshold - ventilation_fraction) / p.hypoventilation_threshold
            spo2_target = p.baseline_spo2 - deficit * (p.baseline_spo2 - p.min_spo2)
        decay = np.exp(-dt_min / p.spo2_time_constant_min)
        self._spo2 = float(spo2_target + (self._spo2 - spo2_target) * decay)
        self._spo2 = float(np.clip(self._spo2, p.min_spo2, 100.0))

        # Pain decays naturally and is relieved by analgesia.
        natural_pain = self._pain * np.exp(-p.pain_decay_per_min * dt_min)
        self._pain = float(np.clip(natural_pain * (1.0 - analgesia), 0.0, 10.0))

        # Heart rate: baseline + pain contribution + hypoxia compensation.
        hypoxia = max(0.0, p.baseline_spo2 - self._spo2)
        self._heart_rate = float(
            p.baseline_heart_rate_bpm
            + p.heart_rate_pain_gain * self._pain
            + p.heart_rate_hypoxia_gain * hypoxia
        )
        return self.state

    # -------------------------------------------------------------- analysis
    def is_in_respiratory_failure(self, spo2_threshold: float = 85.0, rr_threshold: float = 6.0) -> bool:
        """Clinical definition of respiratory failure used by the experiments."""
        return self._spo2 < spo2_threshold or self._respiratory_rate < rr_threshold

    def add_pain_stimulus(self, magnitude: float) -> None:
        """External pain stimulus (e.g. physiotherapy) on the 0-10 scale."""
        if magnitude < 0:
            raise ValueError("pain stimulus must be non-negative")
        self._pain = float(np.clip(self._pain + magnitude, 0.0, 10.0))
