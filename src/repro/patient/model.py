"""Composite patient model -- the "Patient Model" box of Figure 1.

:class:`PatientModel` wires together the PK, PD, and vital-signs models and
exposes the two interfaces the rest of the system needs:

* the *drug input* interface used by the PCA pump (:meth:`infuse_bolus`,
  :meth:`set_infusion_rate`), and
* the *physiological signal* interface sampled by sensing devices such as the
  pulse oximeter (:attr:`vital_signs`).

The model is also a simulation :class:`~repro.sim.kernel.Process`: when
registered with a simulator it advances itself on a fixed physiological time
step and records ground-truth traces used by the experiment metrics.
"""

from __future__ import annotations

from typing import Optional

from repro.patient.map_model import ArterialPressureModel
from repro.patient.pharmacodynamics import PDParameters, RespiratoryDepressionPD
from repro.patient.pharmacokinetics import PKParameters, TwoCompartmentPK
from repro.patient.population import DEFAULT_PATIENT, PatientParameters
from repro.patient.vitals import VitalSigns, VitalSignsModel, VitalSignsParameters
from repro.sim.kernel import Process
from repro.sim.sampler import BatchedTraceWriter, PeriodicSampler
from repro.sim.trace import TraceRecorder

SECONDS_PER_MINUTE = 60.0


class PatientModel(Process):
    """Dynamic patient model combining PK, PD, vital signs, and MAP."""

    def __init__(
        self,
        parameters: Optional[PatientParameters] = None,
        *,
        update_period_s: float = 5.0,
        trace: Optional[TraceRecorder] = None,
        pk_base: Optional[PKParameters] = None,
        pd_base: Optional[PDParameters] = None,
        vitals_base: Optional[VitalSignsParameters] = None,
        rng=None,
    ) -> None:
        parameters = parameters or DEFAULT_PATIENT
        parameters.validate()
        super().__init__(name=f"patient:{parameters.patient_id}")
        if update_period_s <= 0:
            raise ValueError("update_period_s must be positive")
        self.parameters = parameters
        self.update_period_s = update_period_s
        self.pk = TwoCompartmentPK(parameters.pk_parameters(pk_base))
        self.pd = RespiratoryDepressionPD(parameters.pd_parameters(pd_base))
        self.vitals_model = VitalSignsModel(parameters.vitals_parameters(vitals_base))
        self.map_model = ArterialPressureModel(rng=rng)
        self._infusion_rate_mg_per_min = 0.0
        self._last_update_time: Optional[float] = None
        self._respiratory_failure_onset: Optional[float] = None
        self.total_drug_delivered_mg = 0.0
        self._failure_event_name = f"{parameters.patient_id}:respiratory_failure"
        self.trace = trace  # property: builds the batched writer

    @property
    def trace(self) -> Optional[TraceRecorder]:
        return self._trace

    @trace.setter
    def trace(self, trace: Optional[TraceRecorder]) -> None:
        # Sampling backbone: the seven physiological signals are declared
        # once per trace attachment, so recording a ground-truth row is
        # fourteen list appends with no name formatting, flushed in batches
        # via record_many.  Assigning `trace` after construction records
        # exactly like a trace passed to __init__: the old writer is flushed
        # and unregistered, and live sampling loops re-pointed.
        old_writer = getattr(self, "_writer", None)
        if old_writer is not None:
            old_writer.detach()
        self._trace = trace
        if trace is None:
            self._writer: Optional[BatchedTraceWriter] = None
        else:
            writer = BatchedTraceWriter(trace, prefix=self.parameters.patient_id,
                                        source=self.name)
            self._writer = writer
            self._sig_plasma = writer.declare("plasma_mg_per_l")
            self._sig_effect_site = writer.declare("effect_site_mg_per_l")
            self._sig_spo2 = writer.declare("spo2")
            self._sig_heart_rate = writer.declare("heart_rate")
            self._sig_respiratory_rate = writer.declare("respiratory_rate")
            self._sig_pain = writer.declare("pain")
            self._sig_true_map = writer.declare("true_map")
        for task in self._tasks:
            if isinstance(task, PeriodicSampler):
                task.writer = self._writer

    # --------------------------------------------------------------- process
    def start(self) -> None:
        self._last_update_time = self.now
        sampler = PeriodicSampler(
            self.simulator, self.update_period_s, self._advance,
            writer=self._writer, name=f"{self.name}:sampler",
        )
        sampler.start(self.now + self.update_period_s)
        self._tasks.append(sampler)

    def _advance(self) -> None:
        now = self.now
        if self._last_update_time is None:
            self._last_update_time = now
            return
        dt_min = (now - self._last_update_time) / SECONDS_PER_MINUTE
        self._last_update_time = now
        self.advance_by(dt_min, record_time=now)

    def advance_by(self, dt_min: float, record_time: Optional[float] = None) -> VitalSigns:
        """Advance the physiology ``dt_min`` minutes (also usable standalone)."""
        plasma = self.pk.advance(dt_min, self._infusion_rate_mg_per_min)
        self.total_drug_delivered_mg += self._infusion_rate_mg_per_min * dt_min
        effect_site = self.pd.advance(dt_min, plasma)
        drive = self.pd.respiratory_drive(effect_site)
        analgesia = self.pd.analgesia(effect_site)
        vitals = self.vitals_model.advance(dt_min, drive, analgesia)
        self.map_model.advance(dt_min)
        if record_time is not None and self.trace is not None:
            self._record(record_time, plasma, effect_site, vitals)
        self._update_failure_tracking(record_time)
        return vitals

    def _record(self, time: float, plasma: float, effect_site: float, vitals: VitalSigns) -> None:
        self._sig_plasma.append(time, plasma)
        self._sig_effect_site.append(time, effect_site)
        self._sig_spo2.append(time, vitals.spo2_percent)
        self._sig_heart_rate.append(time, vitals.heart_rate_bpm)
        self._sig_respiratory_rate.append(time, vitals.respiratory_rate_bpm)
        self._sig_pain.append(time, vitals.pain_level)
        self._sig_true_map.append(time, self.map_model.true_map_mmhg)

    def _update_failure_tracking(self, time: Optional[float]) -> None:
        in_failure = self.vitals_model.is_in_respiratory_failure()
        if in_failure and self._respiratory_failure_onset is None:
            self._respiratory_failure_onset = time if time is not None else self._last_update_time
            if self.trace is not None and time is not None:
                self.trace.event(time, self._failure_event_name, source=self.name)
        elif not in_failure:
            self._respiratory_failure_onset = None

    # ----------------------------------------------------------- drug inputs
    def infuse_bolus(self, dose_mg: float) -> None:
        """Deliver an instantaneous bolus (a PCA demand dose)."""
        self.pk.add_bolus(dose_mg)
        self.total_drug_delivered_mg += dose_mg

    def set_infusion_rate(self, rate_mg_per_min: float) -> None:
        """Set the continuous (basal) infusion rate."""
        if rate_mg_per_min < 0:
            raise ValueError("infusion rate must be non-negative")
        self._infusion_rate_mg_per_min = rate_mg_per_min

    @property
    def infusion_rate_mg_per_min(self) -> float:
        return self._infusion_rate_mg_per_min

    # --------------------------------------------------------------- outputs
    @property
    def vital_signs(self) -> VitalSigns:
        """The true, noise-free vital signs (sensors add noise on top)."""
        return self.vitals_model.state

    @property
    def plasma_concentration_mg_per_l(self) -> float:
        return self.pk.plasma_concentration_mg_per_l

    @property
    def effect_site_concentration_mg_per_l(self) -> float:
        return self.pd.effect_site_concentration_mg_per_l

    @property
    def in_respiratory_failure(self) -> bool:
        return self.vitals_model.is_in_respiratory_failure()

    @property
    def wants_bolus(self) -> bool:
        """Whether the (awake, coherent) patient would press the PCA button.

        A patient in pain presses the button; a heavily sedated patient does
        not -- this self-limiting behaviour is exactly why PCA-by-proxy (a
        relative pressing the button) defeats the intrinsic safety of PCA.
        """
        sedated = self.pd.respiratory_depression() > 0.5
        return self.vitals_model.state.pain_level >= 3.0 and not sedated
