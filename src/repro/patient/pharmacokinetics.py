"""Two-compartment pharmacokinetic (PK) model of opioid infusion.

This is the "Drug Absorption Function" / "Drug level" portion of Figure 1 in
the paper.  The model follows the standard mammillary two-compartment
formulation used for morphine in Mazoit et al. (reference [16] of the paper):
drug is infused into a central compartment (plasma), distributes to a
peripheral compartment, and is eliminated from the central compartment by
first-order clearance.

State variables are drug *amounts* (mg); concentrations are amounts divided
by compartment volumes (mg/L).  Integration uses an exact matrix-exponential
step for the linear system, so arbitrarily long steps remain stable, plus a
simple sub-stepped Euler fallback kept for cross-checking in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass
class PKParameters:
    """Two-compartment PK parameters.

    The defaults approximate morphine in a 70 kg adult: central volume about
    0.3 L/kg, clearance about 1.0 L/min scaled per kg, with slow peripheral
    distribution.  Individual patients scale these by weight and a clearance
    multiplier drawn by :mod:`repro.patient.population`.
    """

    central_volume_l: float = 15.0
    peripheral_volume_l: float = 120.0
    clearance_l_per_min: float = 1.0
    distribution_clearance_l_per_min: float = 2.0

    def validate(self) -> None:
        for name in (
            "central_volume_l",
            "peripheral_volume_l",
            "clearance_l_per_min",
            "distribution_clearance_l_per_min",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    # Rate constants of the standard two-compartment model (per minute).
    @property
    def k10(self) -> float:
        """Elimination rate constant from the central compartment."""
        return self.clearance_l_per_min / self.central_volume_l

    @property
    def k12(self) -> float:
        """Central -> peripheral distribution rate constant."""
        return self.distribution_clearance_l_per_min / self.central_volume_l

    @property
    def k21(self) -> float:
        """Peripheral -> central redistribution rate constant."""
        return self.distribution_clearance_l_per_min / self.peripheral_volume_l

    def scaled_for_weight(self, weight_kg: float, clearance_multiplier: float = 1.0) -> "PKParameters":
        """Return parameters scaled allometrically for a patient of ``weight_kg``."""
        if weight_kg <= 0:
            raise ValueError("weight_kg must be positive")
        if clearance_multiplier <= 0:
            raise ValueError("clearance_multiplier must be positive")
        scale = weight_kg / 70.0
        return PKParameters(
            central_volume_l=self.central_volume_l * scale,
            peripheral_volume_l=self.peripheral_volume_l * scale,
            clearance_l_per_min=self.clearance_l_per_min * (scale**0.75) * clearance_multiplier,
            distribution_clearance_l_per_min=self.distribution_clearance_l_per_min * (scale**0.75),
        )


class TwoCompartmentPK:
    """Stateful two-compartment PK integrator.

    The infusion rate (mg/min) is held piecewise-constant between calls to
    :meth:`advance`; boluses add an amount instantaneously to the central
    compartment.
    """

    #: Bound on cached per-``dt`` propagator pairs (steps are near-periodic,
    #: so a handful of distinct dt values covers an entire run).
    _PROPAGATOR_CACHE_LIMIT = 64

    def __init__(self, parameters: PKParameters) -> None:
        parameters.validate()
        self.parameters = parameters
        self._central_mg = 0.0
        self._peripheral_mg = 0.0
        self._system = self._build_system()
        self._propagators: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}

    def _build_system(self) -> np.ndarray:
        p = self.parameters
        return np.array(
            [
                [-(p.k10 + p.k12), p.k21],
                [p.k12, -p.k21],
            ]
        )

    # ----------------------------------------------------------------- state
    @property
    def central_amount_mg(self) -> float:
        return self._central_mg

    @property
    def peripheral_amount_mg(self) -> float:
        return self._peripheral_mg

    @property
    def total_amount_mg(self) -> float:
        return self._central_mg + self._peripheral_mg

    @property
    def plasma_concentration_mg_per_l(self) -> float:
        """Concentration in the central (plasma) compartment."""
        return self._central_mg / self.parameters.central_volume_l

    def reset(self) -> None:
        self._central_mg = 0.0
        self._peripheral_mg = 0.0

    # ------------------------------------------------------------ integration
    def add_bolus(self, dose_mg: float) -> None:
        """Instantaneously inject ``dose_mg`` into the central compartment."""
        if dose_mg < 0:
            raise ValueError("bolus dose must be non-negative")
        self._central_mg += dose_mg

    def advance(self, dt_min: float, infusion_rate_mg_per_min: float = 0.0) -> float:
        """Advance the model ``dt_min`` minutes under a constant infusion rate.

        Returns the plasma concentration (mg/L) at the end of the step.
        """
        if dt_min < 0:
            raise ValueError("dt_min must be non-negative")
        if infusion_rate_mg_per_min < 0:
            raise ValueError("infusion rate must be non-negative")
        if dt_min == 0:
            return self.plasma_concentration_mg_per_l

        state = np.array([self._central_mg, self._peripheral_mg])
        forcing = np.array([infusion_rate_mg_per_min, 0.0])
        # x' = A x + u  ->  x(t) = e^{At} x0 + A^{-1}(e^{At} - I) u
        # A is invertible because k10 > 0.  The two propagator matrices
        # depend only on (A, dt); steps are near-periodic, so cache them per
        # exact dt — the cached product is the very array the recomputation
        # would produce, keeping trajectories bit-identical.
        cached = self._propagators.get(dt_min)
        if cached is None:
            exp_at = _matrix_exponential(self._system * dt_min)
            a_inv = np.linalg.inv(self._system)
            cached = (exp_at, a_inv @ (exp_at - np.eye(2)))
            if len(self._propagators) < self._PROPAGATOR_CACHE_LIMIT:
                self._propagators[dt_min] = cached
        exp_at, forced_response = cached
        new_state = exp_at @ state + forced_response @ forcing
        self._central_mg = max(0.0, float(new_state[0]))
        self._peripheral_mg = max(0.0, float(new_state[1]))
        return self.plasma_concentration_mg_per_l

    def advance_euler(self, dt_min: float, infusion_rate_mg_per_min: float = 0.0, substeps: int = 100) -> float:
        """Sub-stepped Euler integration; kept as an independent cross-check."""
        if dt_min < 0:
            raise ValueError("dt_min must be non-negative")
        if substeps <= 0:
            raise ValueError("substeps must be positive")
        p = self.parameters
        h = dt_min / substeps
        central = self._central_mg
        peripheral = self._peripheral_mg
        for _ in range(substeps):
            d_central = (
                infusion_rate_mg_per_min
                - p.k10 * central
                - p.k12 * central
                + p.k21 * peripheral
            )
            d_peripheral = p.k12 * central - p.k21 * peripheral
            central += h * d_central
            peripheral += h * d_peripheral
        self._central_mg = max(0.0, central)
        self._peripheral_mg = max(0.0, peripheral)
        return self.plasma_concentration_mg_per_l

    # --------------------------------------------------------------- analysis
    def steady_state_concentration(self, infusion_rate_mg_per_min: float) -> float:
        """Plasma concentration reached if the infusion ran forever."""
        if infusion_rate_mg_per_min < 0:
            raise ValueError("infusion rate must be non-negative")
        return infusion_rate_mg_per_min / self.parameters.clearance_l_per_min

    def half_life_min(self) -> Tuple[float, float]:
        """Distribution and elimination half-lives (minutes) from eigenvalues."""
        eigenvalues = np.linalg.eigvals(self._system)
        rates = np.sort(-np.real(eigenvalues))[::-1]  # fast (alpha), slow (beta)
        return float(np.log(2) / rates[0]), float(np.log(2) / rates[1])


def _matrix_exponential(matrix: np.ndarray) -> np.ndarray:
    """Matrix exponential via eigendecomposition (2x2, real distinct eigenvalues).

    Falls back to a scaled Taylor series if the matrix is defective, which
    cannot happen for physically valid PK parameters but keeps the helper
    robust to degenerate test inputs.
    """
    eigenvalues, eigenvectors = np.linalg.eig(matrix)
    if np.linalg.cond(eigenvectors) < 1e12:
        return np.real(eigenvectors @ np.diag(np.exp(eigenvalues)) @ np.linalg.inv(eigenvectors))
    # Scaling-and-squaring Taylor fallback.
    n = max(0, int(np.ceil(np.log2(max(1.0, np.linalg.norm(matrix, ord=np.inf))))))
    scaled = matrix / (2**n)
    result = np.eye(matrix.shape[0])
    term = np.eye(matrix.shape[0])
    for k in range(1, 16):
        term = term @ scaled / k
        result = result + term
    for _ in range(n):
        result = result @ result
    return result
