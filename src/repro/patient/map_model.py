"""Mean arterial pressure (MAP) model with the bed-height measurement artefact.

Section III(l) of the paper describes a "mixed criticality" scenario:
measurement of mean arterial pressure depends on the relative position of the
patient and sensor, so raising the patient's bed changes the MAP *reading*
without any physiological change, potentially triggering false alarms in a
trend-following monitoring system.  This model separates the patient's true
MAP from the transducer reading so the context-aware alarm experiment (E5)
can quantify the false alarms caused -- and suppressed -- by bed motion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

# Hydrostatic pressure of a 1 cm blood column, in mmHg.  Raising the
# transducer relative to the heart lowers the measured pressure by this much
# per centimetre of height difference.
MMHG_PER_CM_HEIGHT = 0.74


@dataclass
class ArterialPressureParameters:
    baseline_map_mmhg: float = 90.0
    noise_sd_mmhg: float = 1.5
    drift_time_constant_min: float = 20.0
    hypotension_threshold_mmhg: float = 65.0

    def validate(self) -> None:
        if self.baseline_map_mmhg <= 0:
            raise ValueError("baseline_map_mmhg must be positive")
        if self.noise_sd_mmhg < 0:
            raise ValueError("noise_sd_mmhg must be non-negative")
        if self.drift_time_constant_min <= 0:
            raise ValueError("drift_time_constant_min must be positive")


class ArterialPressureModel:
    """True MAP dynamics plus a transducer whose reading depends on bed height."""

    def __init__(
        self,
        parameters: Optional[ArterialPressureParameters] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.parameters = parameters or ArterialPressureParameters()
        self.parameters.validate()
        self._rng = rng
        self._true_map = self.parameters.baseline_map_mmhg
        self._target_map = self.parameters.baseline_map_mmhg
        self._bed_height_offset_cm = 0.0

    # ----------------------------------------------------------------- state
    @property
    def true_map_mmhg(self) -> float:
        """The patient's actual mean arterial pressure."""
        return self._true_map

    @property
    def bed_height_offset_cm(self) -> float:
        """Transducer height offset relative to its calibrated position."""
        return self._bed_height_offset_cm

    @property
    def measured_map_mmhg(self) -> float:
        """What the pressure transducer reports, including the height artefact."""
        reading = self._true_map - self._bed_height_offset_cm * MMHG_PER_CM_HEIGHT
        if self._rng is not None and self.parameters.noise_sd_mmhg > 0:
            reading += float(self._rng.normal(0.0, self.parameters.noise_sd_mmhg))
        return reading

    # -------------------------------------------------------------- dynamics
    def set_target_map(self, target_mmhg: float) -> None:
        """Start a physiological drift toward ``target_mmhg`` (e.g. real hypotension)."""
        if target_mmhg <= 0:
            raise ValueError("target MAP must be positive")
        self._target_map = target_mmhg

    def set_bed_height_offset(self, offset_cm: float) -> None:
        """Raise (+) or lower (-) the bed / transducer by ``offset_cm``."""
        self._bed_height_offset_cm = float(offset_cm)

    def advance(self, dt_min: float) -> float:
        """Advance the true-MAP drift by ``dt_min`` minutes; returns true MAP."""
        if dt_min < 0:
            raise ValueError("dt_min must be non-negative")
        decay = np.exp(-dt_min / self.parameters.drift_time_constant_min)
        self._true_map = float(self._target_map + (self._true_map - self._target_map) * decay)
        return self._true_map

    # -------------------------------------------------------------- analysis
    def is_truly_hypotensive(self) -> bool:
        return self._true_map < self.parameters.hypotension_threshold_mmhg

    def reading_is_hypotensive(self, reading: Optional[float] = None) -> bool:
        value = self.measured_map_mmhg if reading is None else reading
        return value < self.parameters.hypotension_threshold_mmhg
