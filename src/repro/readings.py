"""The slotted, immutable per-sample sensor reading carried end-to-end.

Every sensor sample in the system used to travel as a fresh three-key dict
(``{"value": ..., "valid": ..., "time": ...}``) allocated per published
reading — multiplied by devices x sample rate x campaign size, that dict was
the last per-reading allocation on the messaging hot path.  :class:`Reading`
replaces it: a ``__slots__`` value type produced by the device publish
helpers, carried opaquely through :class:`repro.sim.channel.Channel` messages
and :class:`repro.middleware.bus.Envelope` envelopes, and consumed natively
(attribute access, no string-keyed lookups) by the supervisor, workflow,
EHR, and alarm layers.

Compatibility shim
------------------
``Reading`` implements the read-only :class:`collections.abc.Mapping`
protocol over its three fields, so third-party handlers written against the
old dict payloads keep working unchanged::

    reading["value"]            # -> reading.value
    reading.get("valid", True)  # -> reading.valid
    dict(reading)               # -> {"value": ..., "valid": ..., "time": ...}

The shim is deprecated in favour of attribute access; the one dict idiom it
cannot preserve is ``isinstance(payload, dict)``, which handlers should
replace with :func:`coerce_reading` (handles Readings, legacy dicts, and
bare numbers uniformly).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Iterator, Optional

_FIELDS = ("value", "valid", "time")
_set = object.__setattr__


class Reading:
    """One sensor sample: ``value`` measured at ``time``, flagged ``valid``.

    Instances are immutable (assignment raises), hashable, and compare equal
    to other Readings and to mappings with the same three items.
    """

    __slots__ = _FIELDS

    value: Any
    valid: bool
    time: float

    def __init__(self, value: Any, valid: bool = True, time: float = 0.0) -> None:
        _set(self, "value", value)
        _set(self, "valid", valid)
        _set(self, "time", time)

    # ---------------------------------------------------------- immutability
    def __setattr__(self, name: str, _value: Any) -> None:
        raise AttributeError(f"Reading is immutable (tried to set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Reading is immutable (tried to delete {name!r})")

    # ------------------------------------------------- Mapping-compat (shim)
    def __getitem__(self, key: str) -> Any:
        if key in _FIELDS:
            return getattr(self, key)
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        if key in _FIELDS:
            return getattr(self, key)
        return default

    def keys(self) -> tuple[str, ...]:
        return _FIELDS

    def values(self) -> tuple[Any, ...]:
        return (self.value, self.valid, self.time)

    def items(self) -> tuple[tuple[str, Any], ...]:
        return tuple(zip(_FIELDS, (self.value, self.valid, self.time)))

    def __iter__(self) -> Iterator[str]:
        return iter(_FIELDS)

    def __len__(self) -> int:
        return len(_FIELDS)

    def __contains__(self, key: object) -> bool:
        return key in _FIELDS

    def as_dict(self) -> dict[str, Any]:
        """The legacy dict payload form (same key order the devices used)."""
        return {"value": self.value, "valid": self.valid, "time": self.time}

    # ------------------------------------------------------------ comparison
    def __eq__(self, other: object) -> bool:
        if type(other) is Reading:
            return (self.value == other.value and self.valid == other.valid
                    and self.time == other.time)
        if isinstance(other, Mapping):
            return len(other) == 3 and all(
                key in other and other[key] == getattr(self, key) for key in _FIELDS
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((Reading, self.value, self.valid, self.time))

    def __reduce__(self) -> tuple[type, tuple[Any, bool, float]]:
        # Default slot pickling restores state via setattr, which immutability
        # blocks; rebuild through the constructor instead (campaign workers
        # move objects across processes).
        return (Reading, (self.value, self.valid, self.time))

    def __repr__(self) -> str:
        return f"Reading(value={self.value!r}, valid={self.valid!r}, time={self.time!r})"


# ``isinstance(payload, Mapping)`` keeps working for handlers that type-check
# against the ABC rather than the concrete dict.
Mapping.register(Reading)


def coerce_reading(payload: Any, default_time: float = 0.0) -> Optional[Reading]:
    """View an arbitrary topic payload as a :class:`Reading`, if it is one.

    Accepts the three shapes a data topic has ever carried — a ``Reading``,
    a legacy ``{"value": ...}`` dict (``valid``/``time`` optional), or a bare
    number — and returns ``None`` for anything else (command parameters,
    status dicts like ``bed_height``/``pump_status``, strings).  Consumers
    that track latest values should route every payload through this shim
    instead of ``isinstance(payload, dict)`` checks, which silently drop
    Readings and bare numbers.
    """
    if type(payload) is Reading:
        return payload
    if isinstance(payload, dict):
        if "value" not in payload:
            return None
        return Reading(
            payload["value"],
            bool(payload.get("valid", True)),
            float(payload.get("time", default_time)),
        )
    if isinstance(payload, (int, float)) and not isinstance(payload, bool):
        return Reading(float(payload), True, default_time)
    return None
