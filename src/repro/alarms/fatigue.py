"""Alarm-fatigue model.

"The result is the well-known alarm fatigue that caregivers commonly
experience, which makes them stop paying attention to device alarms and
potentially missing important cases" (Section III(i)).  The model maps a
caregiver's recent false-alarm exposure to the probability that they respond
to the *next* alarm, so the smart-alarm experiments can translate
false-alarm-rate reductions into missed-true-alarm reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class FatigueParameters:
    """Shape of the attention decay.

    base_response_probability:
        Probability of responding with no fatigue at all.
    half_life_false_alarms:
        Number of recent false alarms after which attention halves.
    memory_window_s:
        Only false alarms within this trailing window contribute.
    floor:
        Attention never falls below this (a critical alarm still has *some*
        chance of being answered).
    """

    base_response_probability: float = 0.97
    half_life_false_alarms: float = 15.0
    memory_window_s: float = 8.0 * 3600.0
    floor: float = 0.15

    def validate(self) -> None:
        if not 0 < self.base_response_probability <= 1:
            raise ValueError("base_response_probability must be in (0, 1]")
        if self.half_life_false_alarms <= 0:
            raise ValueError("half_life_false_alarms must be positive")
        if self.memory_window_s <= 0:
            raise ValueError("memory_window_s must be positive")
        if not 0 <= self.floor < 1:
            raise ValueError("floor must be in [0, 1)")


class AlarmFatigueModel:
    """Tracks false-alarm exposure and predicts response probability."""

    def __init__(self, parameters: Optional[FatigueParameters] = None) -> None:
        self.parameters = parameters or FatigueParameters()
        self.parameters.validate()
        self._false_alarm_times: List[float] = []
        self.alarms_seen = 0

    def record_alarm(self, time: float, is_false: bool) -> None:
        """Record one alarm delivered to the caregiver."""
        self.alarms_seen += 1
        if is_false:
            self._false_alarm_times.append(time)

    def recent_false_alarms(self, time: float) -> int:
        cutoff = time - self.parameters.memory_window_s
        return sum(1 for t in self._false_alarm_times if t >= cutoff)

    def response_probability(self, time: float) -> float:
        """Probability the caregiver responds to an alarm raised at ``time``."""
        exposure = self.recent_false_alarms(time)
        attention = 0.5 ** (exposure / self.parameters.half_life_false_alarms)
        probability = self.parameters.base_response_probability * attention
        return max(self.parameters.floor, float(probability))

    def expected_missed_fraction(self, time: float) -> float:
        return 1.0 - self.response_probability(time)

    def simulate_responses(
        self,
        alarm_times: List[Tuple[float, bool]],
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> List[bool]:
        """Replay a stream of ``(time, is_false)`` alarms and sample responses.

        Returns, for each alarm in order, whether the caregiver responded.
        Fatigue accumulates as the stream is replayed, so a burst of false
        alarms early in the list degrades responses to later true alarms.
        """
        rng = rng if rng is not None else np.random.default_rng(seed)
        responses: List[bool] = []
        for time, is_false in sorted(alarm_times, key=lambda pair: pair[0]):
            probability = self.response_probability(time)
            responses.append(bool(rng.random() < probability))
            self.record_alarm(time, is_false)
        return responses
