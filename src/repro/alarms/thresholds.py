"""Fixed-threshold alarms on individual vital signs.

This is the status quo the paper criticises: thresholds "aimed at an
'average' patient" that produce a proliferation of false alarms.  The class
is used both as the baseline in the smart-alarm experiments and as a building
block inside the adaptive and multivariate engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.readings import Reading


class AlarmSeverity(enum.Enum):
    ADVISORY = "advisory"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class AlarmEvent:
    """One raised alarm."""

    time: float
    source: str
    vital: str
    value: float
    severity: AlarmSeverity
    message: str
    suppressed: bool = False

    def with_suppression(self) -> "AlarmEvent":
        return AlarmEvent(
            time=self.time,
            source=self.source,
            vital=self.vital,
            value=self.value,
            severity=self.severity,
            message=self.message,
            suppressed=True,
        )


@dataclass(frozen=True)
class ThresholdRule:
    """A single comparison rule on a vital sign.

    direction:
        ``"below"`` raises when the value drops under the threshold,
        ``"above"`` when it exceeds it.
    persistence_s:
        The condition must hold continuously this long before the alarm is
        raised (0 = raise immediately); filters momentary artefacts.
    """

    vital: str
    threshold: float
    direction: str = "below"
    severity: AlarmSeverity = AlarmSeverity.WARNING
    persistence_s: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("below", "above"):
            raise ValueError(f"direction must be 'below' or 'above', got {self.direction!r}")
        if self.persistence_s < 0:
            raise ValueError("persistence_s must be non-negative")

    def violated_by(self, value: float) -> bool:
        if self.direction == "below":
            return value < self.threshold
        return value > self.threshold


class ThresholdAlarm:
    """Evaluates a set of threshold rules against a stream of observations."""

    def __init__(self, source: str, rules: List[ThresholdRule], *, rearm_time_s: float = 60.0) -> None:
        if rearm_time_s < 0:
            raise ValueError("rearm_time_s must be non-negative")
        self.source = source
        self.rules = list(rules)
        self.rearm_time_s = rearm_time_s
        self.alarms: List[AlarmEvent] = []
        self._violation_start: Dict[int, Optional[float]] = {i: None for i in range(len(self.rules))}
        self._last_alarm_time: Dict[int, float] = {}

    def add_rule(self, rule: ThresholdRule) -> None:
        self.rules.append(rule)
        self._violation_start[len(self.rules) - 1] = None

    def observe(self, time: float, vital: str, value: float) -> List[AlarmEvent]:
        """Feed one observation; returns any alarms raised by it."""
        raised: List[AlarmEvent] = []
        for index, rule in enumerate(self.rules):
            if rule.vital != vital:
                continue
            if rule.violated_by(value):
                start = self._violation_start.get(index)
                if start is None:
                    self._violation_start[index] = time
                    start = time
                if time - start >= rule.persistence_s:
                    if self._can_raise(index, time):
                        event = AlarmEvent(
                            time=time,
                            source=self.source,
                            vital=vital,
                            value=value,
                            severity=rule.severity,
                            message=(
                                f"{vital} {value:.1f} {rule.direction} threshold {rule.threshold:.1f}"
                            ),
                        )
                        self.alarms.append(event)
                        raised.append(event)
                        self._last_alarm_time[index] = time
            else:
                self._violation_start[index] = None
        return raised

    def observe_reading(self, vital: str, reading: Reading) -> List[AlarmEvent]:
        """Feed a device :class:`Reading` natively.

        The reading's own sample time drives persistence/re-arm windows;
        invalid readings (probe-off, lead-off) are sensor artefacts, not
        observations, and raise nothing.
        """
        if not reading.valid:
            return []
        return self.observe(reading.time, vital, float(reading.value))

    def _can_raise(self, rule_index: int, time: float) -> bool:
        last = self._last_alarm_time.get(rule_index)
        return last is None or time - last >= self.rearm_time_s

    @property
    def alarm_times(self) -> List[float]:
        return [alarm.time for alarm in self.alarms]

    def alarms_for(self, vital: str) -> List[AlarmEvent]:
        return [alarm for alarm in self.alarms if alarm.vital == vital]


def default_adult_rules() -> List[ThresholdRule]:
    """The 'average patient' alarm limits the paper criticises."""
    return [
        ThresholdRule(vital="spo2", threshold=90.0, direction="below", severity=AlarmSeverity.CRITICAL),
        ThresholdRule(vital="heart_rate", threshold=50.0, direction="below", severity=AlarmSeverity.WARNING),
        ThresholdRule(vital="heart_rate", threshold=120.0, direction="above", severity=AlarmSeverity.WARNING),
        ThresholdRule(vital="respiratory_rate", threshold=8.0, direction="below", severity=AlarmSeverity.CRITICAL),
        ThresholdRule(vital="map", threshold=65.0, direction="below", severity=AlarmSeverity.CRITICAL),
        ThresholdRule(vital="map", threshold=110.0, direction="above", severity=AlarmSeverity.WARNING),
    ]
