"""Patient-adaptive alarm thresholds derived from EHR baselines.

The paper's example (Section III(i)): "well-trained athletes can have heart
rates that would be considered abnormal in most patients.  Having the
patient's exercise history from the EHR will let the system adjust alarm
thresholds, reducing false alarms."  The adaptive alarm derives each
patient's limits from their recorded baselines (with configurable relative
margins) instead of using population-wide fixed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.alarms.thresholds import AlarmSeverity, ThresholdAlarm, ThresholdRule
from repro.ehr.store import EHRStore


@dataclass
class AdaptiveMargins:
    """Relative margins applied to per-patient baselines.

    heart_rate_low_fraction:
        The low heart-rate limit is ``baseline * heart_rate_low_fraction``.
    spo2_drop:
        The SpO2 limit is ``baseline - spo2_drop`` percentage points.
    respiratory_rate_low_fraction:
        The low respiratory-rate limit relative to baseline.
    map_drop_mmhg:
        The low MAP limit is ``baseline - map_drop_mmhg``.
    """

    heart_rate_low_fraction: float = 0.65
    heart_rate_high_fraction: float = 1.7
    spo2_drop: float = 6.0
    respiratory_rate_low_fraction: float = 0.55
    map_drop_mmhg: float = 25.0

    def validate(self) -> None:
        if not 0 < self.heart_rate_low_fraction < 1:
            raise ValueError("heart_rate_low_fraction must be in (0, 1)")
        if self.heart_rate_high_fraction <= 1:
            raise ValueError("heart_rate_high_fraction must exceed 1")
        if self.spo2_drop <= 0 or self.map_drop_mmhg <= 0:
            raise ValueError("drops must be positive")
        if not 0 < self.respiratory_rate_low_fraction < 1:
            raise ValueError("respiratory_rate_low_fraction must be in (0, 1)")


def adaptive_rules_for_patient(
    ehr: EHRStore,
    patient_id: str,
    margins: Optional[AdaptiveMargins] = None,
) -> List[ThresholdRule]:
    """Build per-patient threshold rules from EHR baselines.

    Falls back to the population defaults for any vital without a baseline.
    """
    margins = margins or AdaptiveMargins()
    margins.validate()
    hr_baseline = ehr.baseline(patient_id, "heart_rate_bpm", default=72.0)
    rr_baseline = ehr.baseline(patient_id, "respiratory_rate_bpm", default=14.0)
    spo2_baseline = ehr.baseline(patient_id, "spo2_percent", default=97.0)
    map_baseline = ehr.baseline(patient_id, "map_mmhg", default=90.0)

    rules = [
        ThresholdRule(
            vital="spo2",
            threshold=max(85.0, spo2_baseline - margins.spo2_drop),
            direction="below",
            severity=AlarmSeverity.CRITICAL,
        ),
        ThresholdRule(
            vital="heart_rate",
            threshold=hr_baseline * margins.heart_rate_low_fraction,
            direction="below",
            severity=AlarmSeverity.WARNING,
        ),
        ThresholdRule(
            vital="heart_rate",
            threshold=hr_baseline * margins.heart_rate_high_fraction,
            direction="above",
            severity=AlarmSeverity.WARNING,
        ),
        ThresholdRule(
            vital="respiratory_rate",
            threshold=rr_baseline * margins.respiratory_rate_low_fraction,
            direction="below",
            severity=AlarmSeverity.CRITICAL,
        ),
        ThresholdRule(
            vital="map",
            threshold=map_baseline - margins.map_drop_mmhg,
            direction="below",
            severity=AlarmSeverity.CRITICAL,
        ),
    ]
    return rules


class AdaptiveThresholdAlarm(ThresholdAlarm):
    """A :class:`ThresholdAlarm` whose rules come from the patient's EHR."""

    def __init__(
        self,
        source: str,
        ehr: EHRStore,
        patient_id: str,
        *,
        margins: Optional[AdaptiveMargins] = None,
        rearm_time_s: float = 60.0,
    ) -> None:
        rules = adaptive_rules_for_patient(ehr, patient_id, margins)
        super().__init__(source, rules, rearm_time_s=rearm_time_s)
        self.ehr = ehr
        self.patient_id = patient_id
        self.margins = margins or AdaptiveMargins()

    def refresh_from_ehr(self) -> None:
        """Re-derive the rules (e.g. after new observations update baselines)."""
        self.rules = adaptive_rules_for_patient(self.ehr, self.patient_id, self.margins)
        self._violation_start = {i: None for i in range(len(self.rules))}
        self._last_alarm_time = {}
