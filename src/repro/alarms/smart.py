"""Multivariate smart alarms with context-event suppression.

Two mechanisms from the paper are implemented:

* *Multivariate correlation* (Section III(i)): "a sudden drop in SpO2
  readings may mean that a patient is experiencing a heart failure.  But if
  blood pressure readings remain normal, the more likely cause of the
  problem is a disconnected wire."  A candidate alarm on one vital is
  cross-checked against corroborating vitals; if they disagree, the alarm is
  downgraded to a technical (equipment) advisory instead of a clinical
  emergency.
* *Context-event suppression* (Section III(l)): a bed-height-change event
  shortly before a MAP step explains the step, so the MAP alarm is
  suppressed (and optionally replaced by a "re-zero transducer" advisory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.alarms.thresholds import AlarmEvent, AlarmSeverity, ThresholdAlarm, ThresholdRule


@dataclass(frozen=True)
class ContextEvent:
    """A context event published by a (possibly low-criticality) device."""

    time: float
    kind: str
    source: str
    data: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SuppressionRule:
    """Suppress alarms on ``vital`` within ``window_s`` after a context event of ``context_kind``."""

    vital: str
    context_kind: str
    window_s: float
    advisory_message: str = ""

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


@dataclass(frozen=True)
class CorroborationRule:
    """Require corroboration before treating an alarm on ``vital`` as clinical.

    corroborating_vital:
        The independent signal to cross-check.
    predicate:
        ``predicate(corroborating_value)`` must return True for the alarm to
        be considered physiologically corroborated.
    max_age_s:
        Corroborating observations older than this are ignored.
    """

    vital: str
    corroborating_vital: str
    predicate: Callable[[float], bool]
    max_age_s: float = 30.0
    technical_message: str = "suspected sensor artefact"


class SmartAlarmEngine:
    """Combines threshold alarms, corroboration, and context suppression."""

    def __init__(
        self,
        base_alarm: ThresholdAlarm,
        *,
        corroboration_rules: Sequence[CorroborationRule] = (),
        suppression_rules: Sequence[SuppressionRule] = (),
    ) -> None:
        self.base_alarm = base_alarm
        self.corroboration_rules = list(corroboration_rules)
        self.suppression_rules = list(suppression_rules)
        self._latest: Dict[str, Tuple[float, float]] = {}
        self._context_events: List[ContextEvent] = []
        self.clinical_alarms: List[AlarmEvent] = []
        self.technical_advisories: List[AlarmEvent] = []
        self.suppressed_alarms: List[AlarmEvent] = []

    # ------------------------------------------------------------ observations
    def observe(self, time: float, vital: str, value: float) -> List[AlarmEvent]:
        """Feed an observation; returns the clinical alarms it raised (if any)."""
        self._latest[vital] = (time, value)
        candidates = self.base_alarm.observe(time, vital, value)
        raised: List[AlarmEvent] = []
        for candidate in candidates:
            raised.extend(self._triage(candidate))
        return raised

    def observe_reading(self, vital: str, reading) -> List[AlarmEvent]:
        """Feed a device :class:`~repro.readings.Reading` natively.

        Invalid readings are sensor artefacts: they raise no clinical alarm
        here (corroboration/suppression triage only sees real observations).
        """
        if not reading.valid:
            return []
        return self.observe(reading.time, vital, float(reading.value))

    def observe_context(self, event: ContextEvent) -> None:
        """Record a context event (bed moved, patient repositioned, ...)."""
        self._context_events.append(event)

    # ---------------------------------------------------------------- triage
    def _triage(self, candidate: AlarmEvent) -> List[AlarmEvent]:
        suppression = self._find_suppression(candidate)
        if suppression is not None:
            self.suppressed_alarms.append(candidate.with_suppression())
            if suppression.advisory_message:
                advisory = AlarmEvent(
                    time=candidate.time,
                    source=candidate.source,
                    vital=candidate.vital,
                    value=candidate.value,
                    severity=AlarmSeverity.ADVISORY,
                    message=suppression.advisory_message,
                )
                self.technical_advisories.append(advisory)
            return []

        corroboration = self._find_corroboration_failure(candidate)
        if corroboration is not None:
            advisory = AlarmEvent(
                time=candidate.time,
                source=candidate.source,
                vital=candidate.vital,
                value=candidate.value,
                severity=AlarmSeverity.ADVISORY,
                message=corroboration.technical_message,
            )
            self.technical_advisories.append(advisory)
            return []

        self.clinical_alarms.append(candidate)
        return [candidate]

    def _find_suppression(self, candidate: AlarmEvent) -> Optional[SuppressionRule]:
        for rule in self.suppression_rules:
            if rule.vital != candidate.vital:
                continue
            for event in reversed(self._context_events):
                if event.kind == rule.context_kind and 0 <= candidate.time - event.time <= rule.window_s:
                    return rule
        return None

    def _find_corroboration_failure(self, candidate: AlarmEvent) -> Optional[CorroborationRule]:
        for rule in self.corroboration_rules:
            if rule.vital != candidate.vital:
                continue
            observation = self._latest.get(rule.corroborating_vital)
            if observation is None:
                continue
            time, value = observation
            if candidate.time - time > rule.max_age_s:
                continue
            if rule.predicate(value):
                # Corroborating vital also looks abnormal -> genuinely clinical.
                return None
            return rule
        return None

    # --------------------------------------------------------------- metrics
    @property
    def clinical_alarm_times(self) -> List[float]:
        return [alarm.time for alarm in self.clinical_alarms]

    def counts(self) -> Dict[str, int]:
        return {
            "clinical": len(self.clinical_alarms),
            "technical": len(self.technical_advisories),
            "suppressed": len(self.suppressed_alarms),
        }


def spo2_wire_disconnection_rules() -> List[CorroborationRule]:
    """The paper's SpO2 / blood-pressure smart-alarm example.

    A low-SpO2 alarm is clinical only if heart rate (from an independent ECG)
    or MAP also looks abnormal; a lone SpO2 collapse with normal circulation
    is most likely a probe problem.
    """
    return [
        CorroborationRule(
            vital="spo2",
            corroborating_vital="map",
            predicate=lambda value: value < 70.0 or value > 110.0,
            technical_message="SpO2 drop without blood-pressure change: check probe connection",
        ),
        CorroborationRule(
            vital="spo2",
            corroborating_vital="ecg_heart_rate",
            predicate=lambda value: value < 50.0 or value > 115.0,
            technical_message="SpO2 drop with normal ECG heart rate: check probe connection",
        ),
    ]


def bed_map_suppression_rules(window_s: float = 120.0) -> List[SuppressionRule]:
    """Context suppression for the mixed-criticality bed/MAP scenario."""
    return [
        SuppressionRule(
            vital="map",
            context_kind="bed_height_change",
            window_s=window_s,
            advisory_message="MAP step coincides with bed movement: re-zero transducer",
        )
    ]
