"""Alarm systems: threshold, patient-adaptive, and multivariate smart alarms.

Section III(i) of the paper describes the false-alarm / alarm-fatigue problem
and two remedies enabled by interoperability: patient-adaptive thresholds
informed by the EHR, and multivariate "smart alarms" that correlate signals
from several devices before alerting the caregiver.  Section III(l)'s
mixed-criticality example adds context events (bed height changes) as a
third suppression source.

* :class:`~repro.alarms.thresholds.ThresholdAlarm` -- classic fixed-threshold
  alarm on a single vital sign.
* :class:`~repro.alarms.adaptive.AdaptiveThresholdAlarm` -- thresholds
  derived from the patient's EHR baselines.
* :class:`~repro.alarms.smart.SmartAlarmEngine` -- rule-based multivariate
  correlation and context-event suppression.
* :class:`~repro.alarms.fatigue.AlarmFatigueModel` -- caregiver attention as
  a function of false-alarm exposure.
"""

from repro.alarms.thresholds import AlarmEvent, AlarmSeverity, ThresholdAlarm, ThresholdRule
from repro.alarms.adaptive import AdaptiveThresholdAlarm, adaptive_rules_for_patient
from repro.alarms.smart import ContextEvent, SmartAlarmEngine, SuppressionRule
from repro.alarms.fatigue import AlarmFatigueModel

__all__ = [
    "AlarmEvent",
    "AlarmSeverity",
    "ThresholdAlarm",
    "ThresholdRule",
    "AdaptiveThresholdAlarm",
    "adaptive_rules_for_patient",
    "ContextEvent",
    "SmartAlarmEngine",
    "SuppressionRule",
    "AlarmFatigueModel",
]
