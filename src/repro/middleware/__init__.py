"""ICE-style medical device interoperability middleware.

The paper (Sections II(b) and III(k)) argues that open interoperability
between medical devices -- along the lines of the MD PnP initiative's ICE
standard (ASTM F2761) -- is the foundation for closed-loop clinical
scenarios.  This package implements the ICE conceptual model in simulation:

* :class:`~repro.middleware.bus.DeviceBus` -- the network controller: a
  topic-based publish/subscribe bus built on lossy, delaying channels.
* :class:`~repro.middleware.registry.DeviceRegistry` -- plug-and-play device
  registration and capability matching against scenario requirements.
* :class:`~repro.middleware.qos.QoSMonitor` -- per-topic deadline / freshness
  monitoring, the mechanism a supervisor uses to detect communication
  failures in its control loop.
* :class:`~repro.middleware.supervisor_host.SupervisorHost` -- hosts supervisor
  applications (the "supervisor" box of ICE / Figure 1), routing subscriptions
  and commands with authorisation checks from :mod:`repro.security`.
* :class:`~repro.middleware.clock_sync.ClockSync` -- bounded-skew clock
  synchronisation between devices, needed by timing-sensitive coordination
  such as the X-ray/ventilator scenario.
"""

from repro.middleware.bus import BusConfig, DeviceBus
from repro.middleware.registry import DeviceRegistry, RegistrationError
from repro.middleware.qos import QoSMonitor, TopicQoS
from repro.middleware.supervisor_host import SupervisorApp, SupervisorHost
from repro.middleware.clock_sync import ClockSync, DeviceClock

__all__ = [
    "BusConfig",
    "DeviceBus",
    "DeviceRegistry",
    "RegistrationError",
    "QoSMonitor",
    "TopicQoS",
    "SupervisorApp",
    "SupervisorHost",
    "ClockSync",
    "DeviceClock",
]
