"""Topic-based publish/subscribe bus over simulated network channels.

The bus is the ICE "network controller": every attached device gets its own
uplink channel to the bus and the bus forwards messages to subscriber
downlink channels, so end-to-end latency is the sum of two channel delays
plus any bus processing delay.  Channels can be degraded or cut by the fault
injector to model communication failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.devices.base import MedicalDevice
from repro.obs.metrics import bus_instruments
from repro.sim.channel import Channel, ChannelConfig, Message
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

#: Topic prefix reserved for the reverse (command) path.  Command messages
#: ride the device uplink but must never enter the pub/sub forwarding path.
COMMAND_TOPIC_PREFIX = "__command__:"


class Envelope:
    """Bus forwarding envelope: the original payload plus its publish time.

    One envelope is built per forwarded message (shared by every subscriber
    copy) on the simulation's hottest messaging path; a slotted class keeps
    that cheaper than a fresh two-key dict per subscriber and makes the
    contract explicit.  Treat instances as immutable.
    """

    __slots__ = ("payload", "published_at")

    def __init__(self, payload: Any, published_at: float) -> None:
        self.payload = payload
        self.published_at = published_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Envelope published_at={self.published_at} {self.payload!r}>"


@dataclass
class BusConfig:
    """Network parameters for the device bus.

    uplink / downlink:
        Channel configurations for device-to-bus and bus-to-subscriber links.
    processing_delay_s:
        Fixed forwarding delay inside the bus (message validation, routing).
    """

    uplink: ChannelConfig = field(default_factory=lambda: ChannelConfig(latency_s=0.02))
    downlink: ChannelConfig = field(default_factory=lambda: ChannelConfig(latency_s=0.02))
    processing_delay_s: float = 0.005

    def validate(self) -> None:
        self.uplink.validate()
        self.downlink.validate()
        if self.processing_delay_s < 0:
            raise ValueError("processing_delay_s must be non-negative")


class DeviceBus:
    """Publish/subscribe message bus connecting devices and supervisors."""

    def __init__(
        self,
        simulator: Simulator,
        config: Optional[BusConfig] = None,
        *,
        rng=None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.simulator = simulator
        self.config = config or BusConfig()
        self.config.validate()
        self._rng = rng
        self.trace = trace
        self._uplinks: Dict[str, Channel] = {}
        self._downlinks: Dict[str, Channel] = {}
        self._subscriptions: Dict[str, List[Tuple[str, Callable[[str, Any, Message], None]]]] = {}
        self._attached_devices: Dict[str, MedicalDevice] = {}
        self._command_routes: set = set()
        self.published_count = 0
        self.forwarded_count = 0
        # Registry-backed metrics; None unless repro.obs was enabled when
        # this bus was constructed.
        self._obs = bus_instruments()

    # ------------------------------------------------------------ attachment
    def attach_device(self, device: MedicalDevice) -> Channel:
        """Attach a device: create its uplink and wire its publish method."""
        device_id = device.descriptor.device_id
        if device_id in self._attached_devices:
            raise ValueError(f"device {device_id!r} is already attached to the bus")
        uplink = self._make_uplink(device_id)
        self._attached_devices[device_id] = device
        device.attach_publisher(lambda topic, payload, d=device_id: self.publish(d, topic, payload))
        return uplink

    def attach_endpoint(self, endpoint_id: str) -> None:
        """Attach a non-device endpoint (supervisor, logger) for subscriptions."""
        if endpoint_id not in self._downlinks:
            self._downlinks[endpoint_id] = Channel(
                self.simulator,
                name=f"downlink:{endpoint_id}",
                config=self.config.downlink,
                rng=self._rng,
            )

    def _make_uplink(self, device_id: str) -> Channel:
        if device_id not in self._uplinks:
            channel = Channel(
                self.simulator,
                name=f"uplink:{device_id}",
                config=self.config.uplink,
                rng=self._rng,
            )
            channel.subscribe(self._on_uplink_message)
            self._uplinks[device_id] = channel
        return self._uplinks[device_id]

    def uplink(self, device_id: str) -> Channel:
        return self._uplinks[device_id]

    def downlink(self, endpoint_id: str) -> Channel:
        return self._downlinks[endpoint_id]

    @property
    def devices(self) -> Dict[str, MedicalDevice]:
        return dict(self._attached_devices)

    @property
    def channels(self) -> List[Channel]:
        return list(self._uplinks.values()) + list(self._downlinks.values())

    # ------------------------------------------------------------ publishing
    def publish(self, device_id: str, topic: str, payload: Any) -> None:
        """Called by devices; routes the message through the device's uplink."""
        uplink = self._make_uplink(device_id)
        self.published_count += 1
        if self._obs is not None:
            self._obs.published.value += 1
        if self.trace is not None:
            self.trace.event(self.simulator.now, f"bus:publish:{topic}", payload, source=device_id)
        uplink.send(device_id, topic, payload)

    def _on_uplink_message(self, message: Message) -> None:
        """Uplink delivery: forward to each subscriber after bus processing delay."""
        if message.topic.startswith(COMMAND_TOPIC_PREFIX):
            # Commands ride the uplink in reverse and are delivered by their
            # own topic subscription in send_command(); forwarding them here
            # would schedule one phantom kernel event per command that fans
            # out to nobody.
            return
        self.simulator.schedule(
            self.config.processing_delay_s,
            lambda: self._forward(message),
            name=f"bus:forward:{message.topic}",
        )

    def _forward(self, message: Message) -> None:  # repro-lint: hot
        # Deliver one copy per subscribed endpoint; the endpoint's downlink
        # channel then fans the message out to the handlers registered at
        # subscribe() time.  The original publish time travels in the
        # envelope for end-to-end latency accounting.  Dedup with an
        # insertion-ordered dict, NOT a set: subscription (insertion) order
        # makes delivery order — and hence downlink sequence numbers and
        # kernel tiebreaks — independent of PYTHONHASHSEED.  The plain loop
        # (vs dict.fromkeys over a genexpr) keeps the per-forward generator
        # frame off this hot path without changing iteration order.
        subscriptions = self._subscriptions.get(message.topic)
        if not subscriptions:
            return
        endpoints = {}
        for endpoint_id, _ in subscriptions:
            if endpoint_id not in endpoints:
                endpoints[endpoint_id] = None
        envelope = Envelope(message.payload, message.sent_at)
        obs = self._obs
        for endpoint_id in endpoints:
            downlink = self._downlinks.get(endpoint_id)
            if downlink is None:
                continue
            self.forwarded_count += 1
            if obs is not None:
                obs.forwarded.value += 1
            downlink.send(message.sender, message.topic, envelope)

    # ---------------------------------------------------------- subscribing
    def subscribe(
        self,
        endpoint_id: str,
        topic: str,
        handler: Callable[[str, Any, Message], None],
    ) -> None:
        """Subscribe ``endpoint_id`` to ``topic``.

        ``handler(topic, payload, message)`` is called on each delivery, where
        ``message`` is the downlink delivery record (including end-to-end
        latency information).
        """
        self.attach_endpoint(endpoint_id)
        downlink = self._downlinks[endpoint_id]

        def _deliver(message: Message, topic=topic, handler=handler) -> None:
            envelope = message.payload
            handler(topic, envelope.payload, message)

        downlink.subscribe(_deliver, topic=topic)
        self._subscriptions.setdefault(topic, []).append((endpoint_id, handler))

    def subscribers(self, topic: str) -> List[str]:
        return [endpoint for endpoint, _ in self._subscriptions.get(topic, [])]

    # -------------------------------------------------------------- commands
    def send_command(
        self,
        sender_id: str,
        device_id: str,
        command: str,
        parameters: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Send a command to a device through its uplink channel (reverse path).

        Returns True if the command was handed to the network (delivery may
        still fail if the channel drops it or the device rejects it).
        """
        device = self._attached_devices.get(device_id)
        if device is None:
            return False
        channel = self._make_uplink(device_id)
        command_topic = f"{COMMAND_TOPIC_PREFIX}{device_id}:{command}"
        if command_topic not in self._command_routes:
            def _deliver(message: Message, device=device, command=command) -> None:
                device.handle_command(command, message.payload)

            channel.subscribe(_deliver, topic=command_topic)
            self._command_routes.add(command_topic)
        if self._obs is not None:
            self._obs.commands.value += 1
        channel.send(sender_id, command_topic, parameters or {})
        if self.trace is not None:
            self.trace.event(
                self.simulator.now,
                f"bus:command:{command}",
                {"target": device_id, "sender": sender_id},
                source=sender_id,
            )
        return True

    # ------------------------------------------------------------ statistics
    def stats(self) -> Dict[str, Any]:
        return {
            "published": self.published_count,
            "forwarded": self.forwarded_count,
            "uplinks": {name: ch.stats() for name, ch in self._uplinks.items()},
            "downlinks": {name: ch.stats() for name, ch in self._downlinks.items()},
        }
