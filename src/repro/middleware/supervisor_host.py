"""Supervisor hosting: the ICE "supervisor" component.

A :class:`SupervisorApp` is an application (the closed-loop PCA safety app,
a smart-alarm app, the X-ray coordinator) that subscribes to device topics
and issues device commands.  The :class:`SupervisorHost` is the platform it
runs on: it wires subscriptions through the device bus, enforces the
security policy on outgoing commands (Section III(m) of the paper), tracks
QoS, and gives apps a periodic execution slot with a modelled algorithm
processing delay (the "Algorithm Processing time" of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.middleware.bus import DeviceBus
from repro.middleware.qos import QoSMonitor, TopicQoS
from repro.readings import Reading
from repro.sim.channel import Message
from repro.sim.kernel import Process
from repro.sim.trace import TraceRecorder


class SupervisorApp:
    """Base class for supervisor applications.

    Subclasses declare the topics they consume via :attr:`subscriptions` and
    the QoS contracts they need via :attr:`qos_contracts`, then implement
    :meth:`on_data` and/or :meth:`step`.
    """

    #: Topics this app subscribes to.
    subscriptions: Tuple[str, ...] = ()
    #: QoS contracts the host should monitor for this app.
    qos_contracts: Tuple[TopicQoS, ...] = ()
    #: Period of the app's control step in seconds (None = event-driven only).
    step_period_s: Optional[float] = 1.0

    def __init__(self, app_id: str) -> None:
        self.app_id = app_id
        self.host: Optional["SupervisorHost"] = None

    # ----------------------------------------------------------------- hooks
    def on_attached(self) -> None:
        """Called when the app is attached to a host."""

    def on_data(self, topic: str, payload: Any, message: Message) -> None:
        """Called for every delivery on a subscribed topic."""

    def step(self, now: float) -> None:
        """Periodic control step (after the host's algorithm delay)."""

    # ------------------------------------------------------------- utilities
    def send_command(self, device_id: str, command: str, parameters: Optional[Dict[str, Any]] = None) -> bool:
        if self.host is None:
            raise RuntimeError(f"app {self.app_id!r} is not attached to a host")
        return self.host.send_command(self, device_id, command, parameters)

    @property
    def qos(self) -> QoSMonitor:
        if self.host is None:
            raise RuntimeError(f"app {self.app_id!r} is not attached to a host")
        return self.host.qos


@dataclass
class CommandRecord:
    time: float
    app_id: str
    device_id: str
    command: str
    authorised: bool
    reason: str = ""


class SupervisorHost(Process):
    """Hosts supervisor apps on top of the device bus."""

    def __init__(
        self,
        bus: DeviceBus,
        *,
        host_id: str = "supervisor_host",
        algorithm_delay_s: float = 0.1,
        command_authoriser: Optional[Callable[[str, str, str], Tuple[bool, str]]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(name=host_id)
        if algorithm_delay_s < 0:
            raise ValueError("algorithm_delay_s must be non-negative")
        self.bus = bus
        self.host_id = host_id
        self.algorithm_delay_s = algorithm_delay_s
        self.trace = trace
        self.qos = QoSMonitor(bus.simulator)
        self._apps: Dict[str, SupervisorApp] = {}
        self._command_authoriser = command_authoriser
        self.command_log: List[CommandRecord] = []

    # ------------------------------------------------------------------ apps
    def attach_app(self, app: SupervisorApp) -> None:
        if app.app_id in self._apps:
            raise ValueError(f"app {app.app_id!r} already attached")
        self._apps[app.app_id] = app
        app.host = self
        endpoint_id = f"{self.host_id}:{app.app_id}"
        self.bus.attach_endpoint(endpoint_id)
        for topic in app.subscriptions:
            self.bus.subscribe(endpoint_id, topic, self._make_handler(app))
        for contract in app.qos_contracts:
            self.qos.add_contract(contract)
        app.on_attached()
        if self._simulator is not None:
            self._schedule_app(app)

    def _make_handler(self, app: SupervisorApp):
        def _handler(topic: str, payload: Any, message: Message) -> None:
            # Fast path: Readings carry their publish time in a slot.  Legacy
            # dict payloads fall back to the old string-keyed lookup.
            if type(payload) is Reading:
                published_at = payload.time
            elif isinstance(payload, dict):
                published_at = payload.get("time", message.sent_at)
            else:
                published_at = message.sent_at
            self.qos.record_delivery(topic, published_at=float(published_at), delivered_at=message.delivered_at)
            app.on_data(topic, payload, message)
        return _handler

    @property
    def apps(self) -> List[SupervisorApp]:
        return list(self._apps.values())

    # --------------------------------------------------------------- process
    def start(self) -> None:
        for app in self._apps.values():
            self._schedule_app(app)

    def _schedule_app(self, app: SupervisorApp) -> None:
        if app.step_period_s is None:
            return
        self.every(app.step_period_s, lambda app=app: self._run_step(app))

    def _run_step(self, app: SupervisorApp) -> None:
        # The algorithm's own processing time delays its effects: schedule the
        # actual decision after algorithm_delay_s so commands it issues carry
        # the Figure 1 "Algorithm Processing time" term.
        self.after(self.algorithm_delay_s, lambda: app.step(self.now))

    # -------------------------------------------------------------- commands
    def send_command(
        self,
        app: SupervisorApp,
        device_id: str,
        command: str,
        parameters: Optional[Dict[str, Any]] = None,
    ) -> bool:
        authorised, reason = True, "no policy"
        if self._command_authoriser is not None:
            authorised, reason = self._command_authoriser(app.app_id, device_id, command)
        record = CommandRecord(
            time=self.now,
            app_id=app.app_id,
            device_id=device_id,
            command=command,
            authorised=authorised,
            reason=reason,
        )
        self.command_log.append(record)
        if self.trace is not None:
            self.trace.event(self.now, f"supervisor:command:{command}",
                             {"device": device_id, "authorised": authorised}, source=app.app_id)
        if not authorised:
            return False
        return self.bus.send_command(f"{self.host_id}:{app.app_id}", device_id, command, parameters)

    # ------------------------------------------------------------- accounting
    def denied_commands(self) -> List[CommandRecord]:
        return [record for record in self.command_log if not record.authorised]
