"""Bounded-skew clock synchronisation between medical devices.

Timing-sensitive coordination -- the X-ray machine deciding whether "enough
time, taking transmission delays into account, is available" (Section II(b))
-- requires the coordinating devices to agree on time within a known bound.
Each device has a local clock with drift and offset; :class:`ClockSync`
models a periodic synchronisation protocol that estimates and corrects the
offsets, leaving a residual skew bound that higher layers (e.g. the X-ray
decision logic) can budget for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.kernel import Process, Simulator


@dataclass
class DeviceClock:
    """A local clock with constant drift (ppm) and initial offset (seconds)."""

    device_id: str
    drift_ppm: float = 0.0
    offset_s: float = 0.0
    correction_s: float = 0.0

    def local_time(self, true_time: float) -> float:
        """The device's reading of its own clock at true time ``true_time``."""
        return true_time * (1.0 + self.drift_ppm * 1e-6) + self.offset_s - self.correction_s

    def error(self, true_time: float) -> float:
        """Signed error of the (corrected) local clock versus true time."""
        return self.local_time(true_time) - true_time


class ClockSync(Process):
    """Periodic master/slave clock synchronisation over a delay-bounded link.

    The master measures each slave's offset by a symmetric exchange; the
    round-trip delay asymmetry limits accuracy, so the residual error after
    correction is bounded by ``link_delay_asymmetry_s`` plus drift accumulated
    over a sync period.
    """

    def __init__(
        self,
        *,
        sync_period_s: float = 10.0,
        link_delay_asymmetry_s: float = 0.002,
    ) -> None:
        super().__init__(name="clock_sync")
        if sync_period_s <= 0:
            raise ValueError("sync_period_s must be positive")
        if link_delay_asymmetry_s < 0:
            raise ValueError("link_delay_asymmetry_s must be non-negative")
        self.sync_period_s = sync_period_s
        self.link_delay_asymmetry_s = link_delay_asymmetry_s
        self._clocks: Dict[str, DeviceClock] = {}
        self.sync_rounds = 0

    # ----------------------------------------------------------------- clocks
    def add_clock(self, clock: DeviceClock) -> None:
        if clock.device_id in self._clocks:
            raise ValueError(f"clock for {clock.device_id!r} already added")
        self._clocks[clock.device_id] = clock

    def clock(self, device_id: str) -> DeviceClock:
        return self._clocks[device_id]

    @property
    def clocks(self) -> List[DeviceClock]:
        return list(self._clocks.values())

    # ---------------------------------------------------------------- process
    def start(self) -> None:
        self.every(self.sync_period_s, self.synchronise)

    def synchronise(self) -> None:
        """One synchronisation round: correct every slave clock toward true time."""
        self.sync_rounds += 1
        now = self.now
        for clock in self._clocks.values():
            # The exchange observes the clock's error up to the delay asymmetry.
            observed_error = clock.error(now)
            residual = self.link_delay_asymmetry_s if observed_error >= 0 else -self.link_delay_asymmetry_s
            clock.correction_s += observed_error - residual

    # ------------------------------------------------------------- accounting
    def worst_case_skew(self) -> float:
        """Bound on the pairwise clock disagreement right before the next sync."""
        max_drift = max((abs(c.drift_ppm) for c in self._clocks.values()), default=0.0)
        drift_accumulation = 2.0 * max_drift * 1e-6 * self.sync_period_s
        return 2.0 * self.link_delay_asymmetry_s + drift_accumulation

    def current_max_error(self) -> float:
        now = self.now if self._simulator is not None else 0.0
        return max((abs(c.error(now)) for c in self._clocks.values()), default=0.0)
