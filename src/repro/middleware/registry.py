"""Plug-and-play device registry and capability matching.

Section III(e) of the paper asks for a clinical-scenario language that names
the "devices necessary for the implementation of the scenario"; Section
III(f) asks that requirements generated from scenario models "be checked
during deployment, ensuring safety of the implementation".  The registry is
that deployment-time check: devices register their descriptors, scenarios
express :class:`DeviceRequirement` lists, and :meth:`DeviceRegistry.match`
either produces a concrete assignment of devices to scenario roles or
reports which requirements cannot be satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.devices.base import DeviceDescriptor


class RegistrationError(ValueError):
    """Raised for invalid registrations (duplicate IDs, malformed descriptors)."""


@dataclass(frozen=True)
class DeviceRequirement:
    """What a scenario role needs from a device.

    role:
        The scenario-local name, e.g. ``"spo2_source"`` or ``"analgesia_pump"``.
    device_type:
        Required device type, or None to accept any type.
    required_topics:
        Topics the device must publish.
    required_commands:
        Commands the device must accept (remote control needs).
    required_capabilities:
        Capability flags the device must advertise.
    max_risk_class:
        Highest acceptable FDA class ("III" accepts everything).
    """

    role: str
    device_type: Optional[str] = None
    required_topics: Tuple[str, ...] = ()
    required_commands: Tuple[str, ...] = ()
    required_capabilities: Tuple[str, ...] = ()
    max_risk_class: str = "III"

    def is_satisfied_by(self, descriptor: DeviceDescriptor) -> bool:
        if self.device_type is not None and descriptor.device_type != self.device_type:
            return False
        if any(topic not in descriptor.published_topics for topic in self.required_topics):
            return False
        if any(cmd not in descriptor.accepted_commands for cmd in self.required_commands):
            return False
        if any(cap not in descriptor.capabilities for cap in self.required_capabilities):
            return False
        risk_order = {"I": 1, "II": 2, "III": 3}
        if risk_order[descriptor.risk_class] > risk_order[self.max_risk_class]:
            return False
        return True

    def unmet_reasons(self, descriptor: DeviceDescriptor) -> List[str]:
        """Human-readable reasons this descriptor fails the requirement."""
        reasons = []
        if self.device_type is not None and descriptor.device_type != self.device_type:
            reasons.append(f"type {descriptor.device_type!r} != required {self.device_type!r}")
        for topic in self.required_topics:
            if topic not in descriptor.published_topics:
                reasons.append(f"missing published topic {topic!r}")
        for cmd in self.required_commands:
            if cmd not in descriptor.accepted_commands:
                reasons.append(f"missing accepted command {cmd!r}")
        for cap in self.required_capabilities:
            if cap not in descriptor.capabilities:
                reasons.append(f"missing capability {cap!r}")
        risk_order = {"I": 1, "II": 2, "III": 3}
        if risk_order[descriptor.risk_class] > risk_order[self.max_risk_class]:
            reasons.append(f"risk class {descriptor.risk_class} exceeds {self.max_risk_class}")
        return reasons


@dataclass
class MatchResult:
    """Outcome of matching scenario requirements against registered devices."""

    assignments: Dict[str, str] = field(default_factory=dict)  # role -> device_id
    unsatisfied: Dict[str, List[str]] = field(default_factory=dict)  # role -> reasons

    @property
    def complete(self) -> bool:
        return not self.unsatisfied


class DeviceRegistry:
    """Registry of connected devices with capability matching."""

    def __init__(self) -> None:
        self._descriptors: Dict[str, DeviceDescriptor] = {}
        self.registration_log: List[Tuple[str, str]] = []  # (action, device_id)

    # ----------------------------------------------------------- registration
    def register(self, descriptor: DeviceDescriptor) -> None:
        if descriptor.device_id in self._descriptors:
            raise RegistrationError(f"device {descriptor.device_id!r} is already registered")
        self._descriptors[descriptor.device_id] = descriptor
        self.registration_log.append(("register", descriptor.device_id))

    def deregister(self, device_id: str) -> None:
        if device_id not in self._descriptors:
            raise RegistrationError(f"device {device_id!r} is not registered")
        del self._descriptors[device_id]
        self.registration_log.append(("deregister", device_id))

    def get(self, device_id: str) -> DeviceDescriptor:
        if device_id not in self._descriptors:
            raise KeyError(f"device {device_id!r} is not registered")
        return self._descriptors[device_id]

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._descriptors

    def __len__(self) -> int:
        return len(self._descriptors)

    @property
    def descriptors(self) -> List[DeviceDescriptor]:
        return list(self._descriptors.values())

    # --------------------------------------------------------------- queries
    def find_by_type(self, device_type: str) -> List[DeviceDescriptor]:
        return [d for d in self._descriptors.values() if d.device_type == device_type]

    def find_publishing(self, topic: str) -> List[DeviceDescriptor]:
        return [d for d in self._descriptors.values() if d.publishes(topic)]

    def find_accepting(self, command: str) -> List[DeviceDescriptor]:
        return [d for d in self._descriptors.values() if d.accepts(command)]

    def candidates(self, requirement: DeviceRequirement) -> List[DeviceDescriptor]:
        return [d for d in self._descriptors.values() if requirement.is_satisfied_by(d)]

    # -------------------------------------------------------------- matching
    def match(self, requirements: List[DeviceRequirement]) -> MatchResult:
        """Assign a distinct registered device to each requirement.

        Uses a greedy assignment over requirements ordered by how constrained
        they are (fewest candidates first), which is sufficient for realistic
        clinical scenario sizes; if a requirement cannot be satisfied the
        reasons against each candidate are reported.
        """
        result = MatchResult()
        used: set = set()
        ordered = sorted(requirements, key=lambda r: len(self.candidates(r)))
        for requirement in ordered:
            available = [d for d in self.candidates(requirement) if d.device_id not in used]
            if available:
                chosen = available[0]
                result.assignments[requirement.role] = chosen.device_id
                used.add(chosen.device_id)
            else:
                reasons: List[str] = []
                for descriptor in self._descriptors.values():
                    if descriptor.device_id in used:
                        reasons.append(f"{descriptor.device_id}: already assigned to another role")
                    else:
                        unmet = requirement.unmet_reasons(descriptor)
                        reasons.append(f"{descriptor.device_id}: " + "; ".join(unmet))
                if not reasons:
                    reasons.append("no devices registered")
                result.unsatisfied[requirement.role] = reasons
        # Restore the caller's requirement order in the assignment dict.
        result.assignments = {
            r.role: result.assignments[r.role] for r in requirements if r.role in result.assignments
        }
        return result
