"""Quality-of-service monitoring: topic freshness and deadline violations.

The closed-loop supervisor's fail-safe behaviour hinges on *knowing* when its
inputs have gone stale -- "the supervisor also needs to be tolerant to faults
that interfere with the control loop, in particular communication failures
between the devices" (Section II(c)).  :class:`QoSMonitor` tracks, per topic,
the time since the last delivery and the distribution of end-to-end
latencies, and reports deadline violations that a supervisor can use to fall
back to a safe state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.kernel import Simulator


@dataclass
class TopicQoS:
    """QoS contract for a topic.

    max_age_s:
        Data older than this is considered stale (freshness deadline).
    max_latency_s:
        End-to-end latency above this counts as a deadline violation.
    """

    topic: str
    max_age_s: float
    max_latency_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.max_age_s <= 0:
            raise ValueError("max_age_s must be positive")
        if self.max_latency_s <= 0:
            raise ValueError("max_latency_s must be positive")


@dataclass
class TopicStats:
    deliveries: int = 0
    deadline_violations: int = 0
    last_delivery_time: Optional[float] = None
    last_published_time: Optional[float] = None
    latencies: List[float] = field(default_factory=list)


class QoSMonitor:
    """Tracks per-topic delivery freshness against QoS contracts."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._contracts: Dict[str, TopicQoS] = {}
        self._stats: Dict[str, TopicStats] = {}
        self.stale_checks: int = 0

    # --------------------------------------------------------------- contracts
    def add_contract(self, contract: TopicQoS) -> None:
        self._contracts[contract.topic] = contract
        self._stats.setdefault(contract.topic, TopicStats())

    def contract(self, topic: str) -> Optional[TopicQoS]:
        return self._contracts.get(topic)

    # -------------------------------------------------------------- recording
    def record_delivery(self, topic: str, published_at: float, delivered_at: Optional[float] = None) -> None:
        """Record a delivery; called by supervisors from their subscription handlers."""
        delivered_at = self.simulator.now if delivered_at is None else delivered_at
        stats = self._stats.setdefault(topic, TopicStats())
        stats.deliveries += 1
        stats.last_delivery_time = delivered_at
        stats.last_published_time = published_at
        latency = max(0.0, delivered_at - published_at)
        stats.latencies.append(latency)
        contract = self._contracts.get(topic)
        if contract is not None and latency > contract.max_latency_s:
            stats.deadline_violations += 1

    # ---------------------------------------------------------------- queries
    def age(self, topic: str) -> float:
        """Seconds since the last delivery on ``topic`` (infinity if never)."""
        stats = self._stats.get(topic)
        if stats is None or stats.last_delivery_time is None:
            return float("inf")
        return self.simulator.now - stats.last_delivery_time

    def is_stale(self, topic: str) -> bool:
        """True if the topic has violated its freshness deadline."""
        self.stale_checks += 1
        contract = self._contracts.get(topic)
        if contract is None:
            return False
        return self.age(topic) > contract.max_age_s

    def stale_topics(self) -> List[str]:
        return [topic for topic in self._contracts if self.is_stale(topic)]

    def any_stale(self) -> bool:
        return bool(self.stale_topics())

    def stats(self, topic: str) -> TopicStats:
        return self._stats.setdefault(topic, TopicStats())

    def mean_latency(self, topic: str) -> float:
        stats = self._stats.get(topic)
        if stats is None or not stats.latencies:
            return 0.0
        return sum(stats.latencies) / len(stats.latencies)

    def max_latency(self, topic: str) -> float:
        stats = self._stats.get(topic)
        if stats is None or not stats.latencies:
            return 0.0
        return max(stats.latencies)

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            topic: {
                "deliveries": float(stats.deliveries),
                "deadline_violations": float(stats.deadline_violations),
                "mean_latency": self.mean_latency(topic),
                "max_latency": self.max_latency(topic),
                "age": self.age(topic),
            }
            for topic, stats in self._stats.items()
        }
