"""Bounded model checking (BMC) over explicit transition systems.

BMC searches for a property violation within ``k`` steps of an initial
state.  It is the counterexample-finding half of the temporal-induction
approach of Sheeran et al. (reference [21] of the paper); the proving half is
:mod:`repro.verification.induction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.verification.transition_system import State, TransitionSystem, state_to_dict


@dataclass
class BMCResult:
    """Result of a bounded model checking run."""

    safe_within_bound: bool
    bound: int
    counterexample: Optional[List[State]] = None
    states_explored: int = 0
    work_units: int = 0

    @property
    def counterexample_length(self) -> Optional[int]:
        return None if self.counterexample is None else len(self.counterexample) - 1


def bounded_model_check(
    system: TransitionSystem,
    invariant: Callable[[Dict[str, object]], bool],
    bound: int,
) -> BMCResult:
    """Check whether the invariant can be violated within ``bound`` steps.

    Performs an iterative-deepening forward search that visits each state at
    the smallest depth at which it is reachable, which is sufficient for
    finding a shortest counterexample.
    """
    if bound < 0:
        raise ValueError("bound must be non-negative")

    work = 0
    # depth-indexed frontier search with global visited-at-depth pruning
    visited_depth: Dict[State, int] = {}
    frontier: List[Tuple[State, Optional[State]]] = []
    parents: Dict[State, Optional[State]] = {}

    for state in system.initial_states:
        visited_depth[state] = 0
        parents[state] = None
        if not invariant(state_to_dict(state)):
            return BMCResult(False, bound, [state], states_explored=1, work_units=work)
        frontier.append((state, None))

    current = [state for state, _ in frontier]
    for depth in range(1, bound + 1):
        next_frontier: List[State] = []
        for state in current:
            for successor in system.successor_states(state):
                work += 1
                known_depth = visited_depth.get(successor)
                if known_depth is not None and known_depth <= depth:
                    continue
                visited_depth[successor] = depth
                parents[successor] = state
                if not invariant(state_to_dict(successor)):
                    return BMCResult(
                        False,
                        bound,
                        _path(parents, successor),
                        states_explored=len(visited_depth),
                        work_units=work,
                    )
                next_frontier.append(successor)
        if not next_frontier:
            break
        current = next_frontier

    return BMCResult(True, bound, None, states_explored=len(visited_depth), work_units=work)


def _path(parents: Dict[State, Optional[State]], last: State) -> List[State]:
    path = [last]
    current = last
    while parents.get(current) is not None:
        current = parents[current]
        path.append(current)
    path.reverse()
    return path
