"""Finite transition systems with synchronous composition.

States are immutable assignments of variables to hashable values (booleans or
small enumerations).  A :class:`TransitionSystem` is defined by its variable
domains, a set of initial states, and a transition relation given as a list
of guarded update rules; the explicit representation keeps the checkers
simple and is adequate for device-protocol models with up to a few million
reachable states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

# A state is a frozenset of (variable, value) pairs so it is hashable.
State = FrozenSet[Tuple[str, object]]


def make_state(assignment: Mapping[str, object]) -> State:
    """Build a :data:`State` from a plain dict."""
    return frozenset(assignment.items())


def state_to_dict(state: State) -> Dict[str, object]:
    return dict(state)


def state_value(state: State, variable: str) -> object:
    for name, value in state:
        if name == variable:
            return value
    raise KeyError(f"variable {variable!r} not in state")


@dataclass(frozen=True)
class Rule:
    """A guarded transition rule.

    guard:
        Predicate over the current state dict.
    update:
        Function mapping the current state dict to a dict of variable
        updates (unmentioned variables keep their values).
    label:
        Action label used by composition for synchronisation: rules with the
        same non-empty label in different systems fire together.
    """

    guard: Callable[[Dict[str, object]], bool]
    update: Callable[[Dict[str, object]], Dict[str, object]]
    label: str = ""
    name: str = ""


class TransitionSystem:
    """An explicit finite transition system."""

    def __init__(
        self,
        name: str,
        variables: Mapping[str, Iterable[object]],
        initial_states: Iterable[Mapping[str, object]],
        rules: Iterable[Rule],
    ) -> None:
        self.name = name
        self.variables: Dict[str, Tuple[object, ...]] = {
            var: tuple(domain) for var, domain in variables.items()
        }
        for var, domain in self.variables.items():
            if not domain:
                raise ValueError(f"variable {var!r} has an empty domain")
        self.initial_states: List[State] = [make_state(dict(s)) for s in initial_states]
        if not self.initial_states:
            raise ValueError("at least one initial state is required")
        for state in self.initial_states:
            self._check_state(state)
        self.rules: List[Rule] = list(rules)

    # ----------------------------------------------------------------- sizes
    @property
    def state_space_size(self) -> int:
        size = 1
        for domain in self.variables.values():
            size *= len(domain)
        return size

    def _check_state(self, state: State) -> None:
        assignment = dict(state)
        if set(assignment) != set(self.variables):
            missing = set(self.variables) - set(assignment)
            extra = set(assignment) - set(self.variables)
            raise ValueError(
                f"state variables mismatch in {self.name!r}: missing {missing}, extra {extra}"
            )
        for var, value in assignment.items():
            if value not in self.variables[var]:
                raise ValueError(f"value {value!r} not in domain of {var!r}")

    # ------------------------------------------------------------ successors
    def successors(self, state: State) -> List[Tuple[State, str]]:
        """All ``(next_state, rule_name)`` pairs enabled from ``state``.

        A state with no enabled rule stutters (self-loop), so every run is
        infinite and safety checking does not report spurious deadlock
        violations.
        """
        assignment = dict(state)
        result: List[Tuple[State, str]] = []
        for rule in self.rules:
            if rule.guard(assignment):
                updates = rule.update(assignment)
                next_assignment = dict(assignment)
                next_assignment.update(updates)
                next_state = make_state(next_assignment)
                self._check_state(next_state)
                result.append((next_state, rule.name or rule.label or "rule"))
        if not result:
            result.append((state, "stutter"))
        return result

    def successor_states(self, state: State) -> List[State]:
        return [s for s, _ in self.successors(state)]

    # ------------------------------------------------------------ evaluation
    def holds_in(self, predicate: Callable[[Dict[str, object]], bool], state: State) -> bool:
        return bool(predicate(dict(state)))

    def random_run(self, length: int, rng, predicate=None) -> List[State]:
        """A random run of ``length`` steps (used by simulation-based testing)."""
        state = self.initial_states[rng.integers(0, len(self.initial_states))]
        run = [state]
        for _ in range(length):
            successors = self.successor_states(state)
            state = successors[rng.integers(0, len(successors))]
            run.append(state)
            if predicate is not None and not predicate(dict(state)):
                break
        return run


def compose(first: TransitionSystem, second: TransitionSystem, name: Optional[str] = None) -> TransitionSystem:
    """Synchronous parallel composition of two transition systems.

    Rules with matching non-empty labels fire together (synchronisation on
    shared actions); unlabelled rules interleave.  Shared variables are not
    allowed -- communication is by synchronised labels only, which keeps the
    composition semantics simple and mirrors message-based device interaction.
    """
    shared_vars = set(first.variables) & set(second.variables)
    if shared_vars:
        raise ValueError(f"cannot compose systems sharing variables: {sorted(shared_vars)}")

    variables: Dict[str, Tuple[object, ...]] = {}
    variables.update(first.variables)
    variables.update(second.variables)

    initial_states = []
    for s1 in first.initial_states:
        for s2 in second.initial_states:
            merged = dict(s1)
            merged.update(dict(s2))
            initial_states.append(merged)

    rules: List[Rule] = []
    labels_first = {rule.label for rule in first.rules if rule.label}
    labels_second = {rule.label for rule in second.rules if rule.label}
    shared_labels = labels_first & labels_second

    def _lift(rule: Rule, own_vars: set) -> Rule:
        def guard(state: Dict[str, object], rule=rule, own_vars=own_vars) -> bool:
            local = {k: v for k, v in state.items() if k in own_vars}
            return rule.guard(local)

        def update(state: Dict[str, object], rule=rule, own_vars=own_vars) -> Dict[str, object]:
            local = {k: v for k, v in state.items() if k in own_vars}
            return rule.update(local)

        return Rule(guard=guard, update=update, label=rule.label, name=rule.name)

    first_vars = set(first.variables)
    second_vars = set(second.variables)

    # Interleaved (unshared-label or unlabelled) rules.
    for rule in first.rules:
        if rule.label not in shared_labels:
            rules.append(_lift(rule, first_vars))
    for rule in second.rules:
        if rule.label not in shared_labels:
            rules.append(_lift(rule, second_vars))

    # Synchronised rules: both guards must hold, both updates apply.
    for label in shared_labels:
        for rule1 in [r for r in first.rules if r.label == label]:
            for rule2 in [r for r in second.rules if r.label == label]:
                lifted1 = _lift(rule1, first_vars)
                lifted2 = _lift(rule2, second_vars)

                def guard(state, g1=lifted1.guard, g2=lifted2.guard) -> bool:
                    return g1(state) and g2(state)

                def update(state, u1=lifted1.update, u2=lifted2.update) -> Dict[str, object]:
                    merged = {}
                    merged.update(u1(state))
                    merged.update(u2(state))
                    return merged

                rules.append(
                    Rule(
                        guard=guard,
                        update=update,
                        label=label,
                        name=f"{rule1.name or label}&{rule2.name or label}",
                    )
                )

    return TransitionSystem(
        name=name or f"{first.name}||{second.name}",
        variables=variables,
        initial_states=initial_states,
        rules=rules,
    )


def compose_many(systems: List[TransitionSystem], name: Optional[str] = None) -> TransitionSystem:
    """Left-fold composition of a list of systems."""
    if not systems:
        raise ValueError("at least one system is required")
    result = systems[0]
    for system in systems[1:]:
        result = compose(result, system)
    if name is not None:
        result.name = name
    return result
