"""Timed interface compatibility checks between devices.

Section III(f) of the paper asks for "precisely specifying the interface
between static and dynamic safety checks": scenario analysis generates
requirements on device interfaces, and deployment must check that the
concrete devices satisfy them.  A :class:`TimedInterface` describes, per
topic, how often a device publishes (or how fresh it needs its inputs) and,
per command, how quickly it reacts.  Compatibility checking verifies that
every consumer's freshness and latency needs are met by the matched
producer, including the network delay budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TopicProduction:
    """A topic a device publishes with a guaranteed maximum period."""

    topic: str
    max_period_s: float

    def __post_init__(self) -> None:
        if self.max_period_s <= 0:
            raise ValueError("max_period_s must be positive")


@dataclass(frozen=True)
class TopicConsumption:
    """A topic a device (or app) consumes with a freshness requirement."""

    topic: str
    max_age_s: float

    def __post_init__(self) -> None:
        if self.max_age_s <= 0:
            raise ValueError("max_age_s must be positive")


@dataclass(frozen=True)
class CommandReaction:
    """A command a device accepts with a bounded reaction time."""

    command: str
    max_reaction_s: float

    def __post_init__(self) -> None:
        if self.max_reaction_s <= 0:
            raise ValueError("max_reaction_s must be positive")


@dataclass(frozen=True)
class CommandRequirement:
    """A command a controller needs, with the deadline it must meet."""

    command: str
    deadline_s: float

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


@dataclass
class TimedInterface:
    """The timed interface of one device or supervisor app."""

    name: str
    produces: List[TopicProduction] = field(default_factory=list)
    consumes: List[TopicConsumption] = field(default_factory=list)
    reacts_to: List[CommandReaction] = field(default_factory=list)
    requires_commands: List[CommandRequirement] = field(default_factory=list)

    def production(self, topic: str) -> Optional[TopicProduction]:
        for production in self.produces:
            if production.topic == topic:
                return production
        return None

    def reaction(self, command: str) -> Optional[CommandReaction]:
        for reaction in self.reacts_to:
            if reaction.command == command:
                return reaction
        return None


@dataclass(frozen=True)
class InterfaceIncompatibility:
    """One detected incompatibility between interfaces."""

    consumer: str
    producer: Optional[str]
    subject: str
    kind: str
    detail: str


def check_interface_compatibility(
    interfaces: List[TimedInterface],
    *,
    network_latency_s: float = 0.0,
) -> List[InterfaceIncompatibility]:
    """Check all consumption / command requirements against the producers.

    Returns an empty list when the composition is compatible.  Three kinds
    of incompatibility are reported:

    * ``missing_producer`` -- nobody publishes a consumed topic;
    * ``freshness`` -- the producer's worst-case period plus network latency
      exceeds the consumer's freshness requirement;
    * ``missing_command`` / ``deadline`` -- a required command is not
      accepted by any device, or its reaction plus latency misses the
      deadline.
    """
    if network_latency_s < 0:
        raise ValueError("network_latency_s must be non-negative")
    problems: List[InterfaceIncompatibility] = []

    producers: Dict[str, List[Tuple[str, TopicProduction]]] = {}
    reactors: Dict[str, List[Tuple[str, CommandReaction]]] = {}
    for interface in interfaces:
        for production in interface.produces:
            producers.setdefault(production.topic, []).append((interface.name, production))
        for reaction in interface.reacts_to:
            reactors.setdefault(reaction.command, []).append((interface.name, reaction))

    for interface in interfaces:
        for consumption in interface.consumes:
            candidates = producers.get(consumption.topic, [])
            if not candidates:
                problems.append(
                    InterfaceIncompatibility(
                        consumer=interface.name,
                        producer=None,
                        subject=consumption.topic,
                        kind="missing_producer",
                        detail=f"no device publishes topic {consumption.topic!r}",
                    )
                )
                continue
            best_name, best = min(candidates, key=lambda pair: pair[1].max_period_s)
            worst_age = best.max_period_s + network_latency_s
            if worst_age > consumption.max_age_s:
                problems.append(
                    InterfaceIncompatibility(
                        consumer=interface.name,
                        producer=best_name,
                        subject=consumption.topic,
                        kind="freshness",
                        detail=(
                            f"worst-case data age {worst_age:.3f}s exceeds required "
                            f"{consumption.max_age_s:.3f}s"
                        ),
                    )
                )
        for requirement in interface.requires_commands:
            candidates = reactors.get(requirement.command, [])
            if not candidates:
                problems.append(
                    InterfaceIncompatibility(
                        consumer=interface.name,
                        producer=None,
                        subject=requirement.command,
                        kind="missing_command",
                        detail=f"no device accepts command {requirement.command!r}",
                    )
                )
                continue
            best_name, best = min(candidates, key=lambda pair: pair[1].max_reaction_s)
            worst_reaction = best.max_reaction_s + network_latency_s
            if worst_reaction > requirement.deadline_s:
                problems.append(
                    InterfaceIncompatibility(
                        consumer=interface.name,
                        producer=best_name,
                        subject=requirement.command,
                        kind="deadline",
                        detail=(
                            f"worst-case reaction {worst_reaction:.3f}s exceeds deadline "
                            f"{requirement.deadline_s:.3f}s"
                        ),
                    )
                )
    return problems
