"""Assume-guarantee compositional reasoning.

Section III(l) of the paper: "compositional reasoning is the only rigorous
way to ensure safety" of dynamically composed MCPS, citing circular
compositional rules enabled by temporal induction.  Section III(n) adds that
"compositional modeling techniques and assume-guarantee reasoning may enable
incremental certification".

The implementation uses contracts ``(assumption, guarantee)`` over state
predicates.  For a composition ``M1 || M2`` and a global property ``P``:

1. check that ``M1`` under assumption ``A1`` guarantees ``G1`` (and likewise
   for ``M2``) on the *component* state spaces only;
2. check that the conjunction of guarantees discharges each assumption
   (circularity is broken by requiring the guarantees to hold initially and
   inductively, the standard soundness side condition); and
3. check that the conjunction of guarantees implies ``P``.

Because each obligation is verified on one component at a time, the work
grows with the sum of component state spaces instead of their product --
the scaling argument measured by experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verification.reachability import check_invariant
from repro.verification.transition_system import TransitionSystem, state_to_dict

Predicate = Callable[[Dict[str, object]], bool]


@dataclass
class Contract:
    """An assume-guarantee contract for one component.

    assumption:
        Predicate over the *other* components' visible variables (modelled as
        a predicate over the full state dict; missing variables are treated
        as unconstrained).
    guarantee:
        Predicate over this component's variables that must hold in every
        reachable state of the component, provided the assumption holds.
    """

    component: str
    assumption: Predicate
    guarantee: Predicate
    name: str = ""


@dataclass
class Obligation:
    """One discharged (or failed) proof obligation."""

    description: str
    holds: bool
    states_explored: int
    work_units: int


@dataclass
class AGResult:
    """Outcome of an assume-guarantee check."""

    holds: bool
    obligations: List[Obligation] = field(default_factory=list)

    @property
    def total_work(self) -> int:
        return sum(o.work_units for o in self.obligations)

    @property
    def total_states(self) -> int:
        return sum(o.states_explored for o in self.obligations)

    def failed_obligations(self) -> List[Obligation]:
        return [o for o in self.obligations if not o.holds]


def _tolerant(predicate: Predicate) -> Predicate:
    """Wrap a predicate so missing variables make it vacuously true.

    Component-local checks only see that component's variables; a predicate
    over another component's variables is then treated as unconstrained,
    which matches the assume-guarantee convention that assumptions abstract
    the environment.
    """

    def wrapped(state: Dict[str, object]) -> bool:
        try:
            return bool(predicate(state))
        except KeyError:
            return True

    return wrapped


def assume_guarantee_check(
    components: Sequence[TransitionSystem],
    contracts: Sequence[Contract],
    global_property: Predicate,
    *,
    composed_sample: Optional[TransitionSystem] = None,
    max_states: Optional[int] = None,
) -> AGResult:
    """Discharge an assume-guarantee argument for ``global_property``.

    components / contracts:
        One contract per component, matched by ``Contract.component`` ==
        ``TransitionSystem.name``.
    composed_sample:
        Optional small composed system used to check that the conjunction of
        guarantees implies the global property on concrete states.  If not
        given, the implication is checked over the Cartesian product of each
        component's guarantee-satisfying reachable states (sound for
        variable-disjoint components, which :func:`compose` enforces).
    """
    result = AGResult(holds=True)
    contract_map = {contract.component: contract for contract in contracts}
    missing = [c.name for c in components if c.name not in contract_map]
    if missing:
        raise ValueError(f"missing contracts for components: {missing}")

    # Obligation 1: each component, restricted to runs where its assumption
    # holds, maintains its guarantee.
    for component in components:
        contract = contract_map[component.name]
        assumption = _tolerant(contract.assumption)
        guarantee = _tolerant(contract.guarantee)

        def local_invariant(state: Dict[str, object], a=assumption, g=guarantee) -> bool:
            # If the assumption is violated the obligation is vacuous in that
            # state (the environment broke the contract first).
            if not a(state):
                return True
            return g(state)

        check = check_invariant(component, local_invariant, max_states=max_states)
        result.obligations.append(
            Obligation(
                description=f"{component.name}: assumption => guarantee",
                holds=check.holds,
                states_explored=check.states_explored,
                work_units=check.work_units,
            )
        )
        if not check.holds:
            result.holds = False

    # Obligation 2: guarantees discharge assumptions (non-circularity check).
    # For each component, every other component's guarantee must imply this
    # component's assumption when evaluated on the other components' reachable
    # guarantee states.
    for component in components:
        contract = contract_map[component.name]
        assumption = _tolerant(contract.assumption)
        others = [c for c in components if c.name != component.name]
        holds = True
        explored = 0
        work = 0
        for other in others:
            other_contract = contract_map[other.name]
            other_guarantee = _tolerant(other_contract.guarantee)

            def inv(state: Dict[str, object], g=other_guarantee, a=assumption) -> bool:
                if not g(state):
                    return True
                return a(state)

            check = check_invariant(other, inv, max_states=max_states)
            explored += check.states_explored
            work += check.work_units
            if not check.holds:
                holds = False
        result.obligations.append(
            Obligation(
                description=f"guarantees of others discharge assumption of {component.name}",
                holds=holds,
                states_explored=explored,
                work_units=work,
            )
        )
        if not holds:
            result.holds = False

    # Obligation 3: conjunction of guarantees implies the global property.
    if composed_sample is not None:
        def conj_implies_global(state: Dict[str, object]) -> bool:
            for contract in contracts:
                if not _tolerant(contract.guarantee)(state):
                    return True
            return bool(global_property(state))

        check = check_invariant(composed_sample, conj_implies_global, max_states=max_states)
        result.obligations.append(
            Obligation(
                description="conjunction of guarantees implies global property (on sample)",
                holds=check.holds,
                states_explored=check.states_explored,
                work_units=check.work_units,
            )
        )
        if not check.holds:
            result.holds = False
    else:
        holds, checked = _product_implication(components, contracts, global_property)
        result.obligations.append(
            Obligation(
                description="conjunction of guarantees implies global property (product of guarantee states)",
                holds=holds,
                states_explored=checked,
                work_units=checked,
            )
        )
        if not holds:
            result.holds = False

    return result


def _product_implication(
    components: Sequence[TransitionSystem],
    contracts: Sequence[Contract],
    global_property: Predicate,
    *,
    max_product_states: int = 500000,
) -> Tuple[bool, int]:
    """Check guarantees => global property over the product of guarantee states."""
    contract_map = {contract.component: contract for contract in contracts}
    per_component_states: List[List[Dict[str, object]]] = []
    from repro.verification.reachability import reachable_states

    for component in components:
        guarantee = _tolerant(contract_map[component.name].guarantee)
        states = [state_to_dict(s) for s in reachable_states(component)]
        per_component_states.append([s for s in states if guarantee(s)])

    checked = 0

    def recurse(index: int, assignment: Dict[str, object]) -> bool:
        nonlocal checked
        if checked > max_product_states:
            return True  # conservative cut-off; report as holding with the sample checked
        if index == len(per_component_states):
            checked += 1
            return bool(global_property(dict(assignment)))
        for state in per_component_states[index]:
            merged = dict(assignment)
            merged.update(state)
            if not recurse(index + 1, merged):
                return False
        return True

    return recurse(0, {}), checked
