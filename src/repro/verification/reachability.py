"""Explicit-state reachability analysis and invariant checking.

This is the monolithic baseline that experiment E6 compares compositional
techniques against: enumerate every reachable state of the composed system
and check the safety invariant in each.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.verification.transition_system import State, TransitionSystem, state_to_dict


@dataclass
class InvariantResult:
    """Result of an invariant check."""

    holds: bool
    states_explored: int
    counterexample: Optional[List[State]] = None
    work_units: int = 0  # successor computations, the cost measure used by E6

    @property
    def counterexample_dicts(self) -> Optional[List[Dict[str, object]]]:
        if self.counterexample is None:
            return None
        return [state_to_dict(state) for state in self.counterexample]


def reachable_states(system: TransitionSystem, *, max_states: Optional[int] = None) -> Set[State]:
    """Breadth-first enumeration of the reachable state space."""
    visited: Set[State] = set(system.initial_states)
    frontier = deque(system.initial_states)
    while frontier:
        if max_states is not None and len(visited) >= max_states:
            break
        state = frontier.popleft()
        for successor in system.successor_states(state):
            if successor not in visited:
                visited.add(successor)
                frontier.append(successor)
    return visited


def check_invariant(
    system: TransitionSystem,
    invariant: Callable[[Dict[str, object]], bool],
    *,
    max_states: Optional[int] = None,
) -> InvariantResult:
    """Breadth-first search for an invariant violation with path reconstruction."""
    parents: Dict[State, Optional[State]] = {s: None for s in system.initial_states}
    frontier = deque(system.initial_states)
    explored = 0
    work = 0

    for state in system.initial_states:
        if not invariant(state_to_dict(state)):
            return InvariantResult(False, 1, [state], work_units=0)

    while frontier:
        if max_states is not None and len(parents) >= max_states:
            break
        state = frontier.popleft()
        explored += 1
        for successor in system.successor_states(state):
            work += 1
            if successor in parents:
                continue
            parents[successor] = state
            if not invariant(state_to_dict(successor)):
                return InvariantResult(
                    False,
                    explored,
                    _reconstruct_path(parents, successor),
                    work_units=work,
                )
            frontier.append(successor)
    return InvariantResult(True, len(parents), None, work_units=work)


def _reconstruct_path(parents: Dict[State, Optional[State]], last: State) -> List[State]:
    path = [last]
    current = last
    while parents.get(current) is not None:
        current = parents[current]
        path.append(current)
    path.reverse()
    return path


def count_reachable(system: TransitionSystem) -> int:
    return len(reachable_states(system))
