"""Formal verification substrate for MCPS safety analysis.

Section III(n) of the paper argues that verification should move early in the
design cycle, and Section III(l) that compositional reasoning -- including
temporal induction in the style of Sheeran et al. [21] -- is the only
rigorous way to ensure the safety of dynamically composed device systems.
This package provides a small but complete verification toolkit:

* :class:`~repro.verification.transition_system.TransitionSystem` -- finite
  boolean/enumerated-state transition systems with synchronous parallel
  composition.
* :mod:`~repro.verification.reachability` -- explicit-state reachability and
  invariant checking (the monolithic baseline of experiment E6).
* :mod:`~repro.verification.bmc` -- bounded model checking for counterexamples.
* :mod:`~repro.verification.induction` -- k-induction (temporal induction).
* :mod:`~repro.verification.assume_guarantee` -- assume-guarantee
  compositional reasoning with circular-rule soundness checks.
* :mod:`~repro.verification.interfaces` -- timed interface compatibility
  checks between device descriptors (the static/dynamic deployment checks
  of Section III(f)).
"""

from repro.verification.transition_system import State, TransitionSystem, compose
from repro.verification.reachability import InvariantResult, check_invariant, reachable_states
from repro.verification.bmc import BMCResult, bounded_model_check
from repro.verification.induction import InductionResult, k_induction
from repro.verification.assume_guarantee import AGResult, Contract, assume_guarantee_check
from repro.verification.interfaces import (
    InterfaceIncompatibility,
    TimedInterface,
    check_interface_compatibility,
)

__all__ = [
    "State",
    "TransitionSystem",
    "compose",
    "InvariantResult",
    "check_invariant",
    "reachable_states",
    "BMCResult",
    "bounded_model_check",
    "InductionResult",
    "k_induction",
    "AGResult",
    "Contract",
    "assume_guarantee_check",
    "InterfaceIncompatibility",
    "TimedInterface",
    "check_interface_compatibility",
]
