"""ECG monitor: independent heart-rate source for multivariate alarms.

The paper's smart-alarm example (Section III(i)) correlates a sudden SpO2
drop with blood pressure to distinguish heart failure from a disconnected
wire.  The ECG monitor provides a heart-rate stream that is independent of
the pulse oximeter's probe, so probe-off artefacts disagree across sources
while true physiological events agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.patient.model import PatientModel
from repro.sim.trace import TraceRecorder


@dataclass
class ECGConfig:
    sample_period_s: float = 2.0
    heart_rate_noise_sd: float = 1.0
    lead_off_value: float = 0.0

    def validate(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.heart_rate_noise_sd < 0:
            raise ValueError("heart_rate_noise_sd must be non-negative")


class ECGMonitor(MedicalDevice):
    """Three-lead ECG monitor publishing heart rate and lead status."""

    def __init__(
        self,
        device_id: str,
        patient: PatientModel,
        config: Optional[ECGConfig] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="ecg_monitor",
            risk_class="II",
            published_topics=("ecg_heart_rate", "lead_status"),
            accepted_commands=(),
            capabilities=("heart_rate_monitoring", "arrhythmia_detection"),
        )
        super().__init__(descriptor, trace=trace)
        self.config = config or ECGConfig()
        self.config.validate()
        self.patient = patient
        self._rng = rng
        self._lead_off = False
        self.readings_published = 0
        self._declare_signals("ecg_heart_rate_reading")
        self._declare_events("lead_off")

    def start(self) -> None:
        self.transition(DeviceState.RUNNING)
        self.sample_every(self.config.sample_period_s, self._sample)

    def _sample(self) -> None:
        if not self.is_operational:
            return
        if self._lead_off:
            self.publish("lead_status", {"attached": False, "time": self.now})
            self.publish_reading("ecg_heart_rate", self.config.lead_off_value, valid=False)
            return
        heart_rate = self.patient.vital_signs.heart_rate_bpm
        if self._rng is not None:
            heart_rate += float(self._rng.normal(0.0, self.config.heart_rate_noise_sd))
        heart_rate = max(0.0, heart_rate)
        self.readings_published += 1
        self.publish_reading("ecg_heart_rate", heart_rate, record="ecg_heart_rate_reading")

    # ----------------------------------------------------------- fault hooks
    def detach_lead(self) -> None:
        self._lead_off = True
        self._log_event("lead_off", True)

    def reattach_lead(self) -> None:
        self._lead_off = False
        self._log_event("lead_off", False)
