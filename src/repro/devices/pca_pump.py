"""Patient-controlled analgesia (PCA) infusion pump.

Models the pump of Figure 1 and the safety mechanisms discussed in
Section II(c) of the paper:

* programmable prescription (bolus dose, lockout interval, hourly limit,
  basal rate) -- the *programmable limits* that the paper notes are "not
  sufficient to protect all patients";
* a patient demand button, plus a proxy-request hook so fault injection can
  model *PCA-by-proxy*;
* a misprogramming hook (wrong concentration / rate multiplier), the leading
  cause of PCA adverse events per references [18] and [23] of the paper;
* a remote ``stop``/``resume`` command interface used by the closed-loop
  supervisor, with a configurable command-processing delay (the "pump stop
  delay" term in Figure 1's delay budget).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.patient.model import PatientModel
from repro.sim.trace import TraceRecorder

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class PCAPrescription:
    """A PCA prescription as programmed into the pump.

    bolus_dose_mg:
        Drug delivered per successful button press.
    lockout_interval_s:
        Minimum time between delivered boluses.
    hourly_limit_mg:
        Maximum drug the pump will deliver in any rolling hour.
    basal_rate_mg_per_hr:
        Continuous background infusion (0 for demand-only PCA).
    concentration_mg_per_ml:
        Drug concentration loaded in the syringe; a wrong-concentration
        loading error scales delivered doses without changing the programme.
    """

    bolus_dose_mg: float = 1.0
    lockout_interval_s: float = 360.0
    hourly_limit_mg: float = 10.0
    basal_rate_mg_per_hr: float = 0.0
    concentration_mg_per_ml: float = 1.0

    def validate(self) -> None:
        if self.bolus_dose_mg < 0:
            raise ValueError("bolus_dose_mg must be non-negative")
        if self.lockout_interval_s < 0:
            raise ValueError("lockout_interval_s must be non-negative")
        if self.hourly_limit_mg <= 0:
            raise ValueError("hourly_limit_mg must be positive")
        if self.basal_rate_mg_per_hr < 0:
            raise ValueError("basal_rate_mg_per_hr must be non-negative")
        if self.concentration_mg_per_ml <= 0:
            raise ValueError("concentration_mg_per_ml must be positive")


class PCAPump(MedicalDevice):
    """Simulated PCA pump attached to a :class:`~repro.patient.model.PatientModel`."""

    def __init__(
        self,
        device_id: str,
        patient: PatientModel,
        prescription: Optional[PCAPrescription] = None,
        *,
        command_delay_s: float = 1.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="pca_pump",
            risk_class="II",
            published_topics=("pump_status", "dose_delivered"),
            accepted_commands=("stop", "resume", "set_prescription"),
            capabilities=("infusion", "bolus", "remote_stop"),
        )
        super().__init__(descriptor, trace=trace)
        prescription = prescription or PCAPrescription()
        prescription.validate()
        if command_delay_s < 0:
            raise ValueError("command_delay_s must be non-negative")
        self.patient = patient
        self.prescription = prescription
        self.programmed_prescription = prescription
        self.command_delay_s = command_delay_s
        self.stopped_by_supervisor = False
        self.delivered_boluses: List[Tuple[float, float]] = []
        self.denied_requests: List[Tuple[float, str]] = []
        self.proxy_requests = 0
        self._last_bolus_time: Optional[float] = None
        self._concentration_error = 1.0
        self._declare_signals("stopped")
        self._declare_events("bolus_delivered", "stopped_by_supervisor",
                             "resumed_by_supervisor", "misprogrammed")
        self.register_command("stop", self._command_stop)
        self.register_command("resume", self._command_resume)
        self.register_command("set_prescription", self._command_set_prescription)

    # --------------------------------------------------------------- process
    def start(self) -> None:
        self.transition(DeviceState.RUNNING)
        self._apply_basal_rate()
        self.sample_every(10.0, self._publish_status)

    def _publish_status(self) -> None:
        if not self.is_operational:
            return
        self.publish(
            "pump_status",
            {
                "device_id": self.descriptor.device_id,
                "stopped": self.stopped_by_supervisor,
                "state": self.state.value,
                "delivered_mg_last_hour": self.delivered_in_window(SECONDS_PER_HOUR),
                "basal_rate_mg_per_hr": self.effective_prescription.basal_rate_mg_per_hr,
            },
        )
        self._record("stopped", 1.0 if self.stopped_by_supervisor else 0.0)

    # --------------------------------------------------------------- dosing
    @property
    def effective_prescription(self) -> PCAPrescription:
        """The prescription as the pump will actually execute it.

        Misprogramming and wrong-concentration loading are reflected here,
        while :attr:`programmed_prescription` keeps what the clinician
        intended -- the gap between the two is what the supervisor has to
        catch.
        """
        rx = self.prescription
        if self._concentration_error != 1.0:
            rx = replace(
                rx,
                bolus_dose_mg=rx.bolus_dose_mg * self._concentration_error,
                basal_rate_mg_per_hr=rx.basal_rate_mg_per_hr * self._concentration_error,
            )
        return rx

    def request_bolus(self, by_proxy: bool = False) -> bool:
        """Patient (or proxy) presses the demand button; returns True if delivered."""
        now = self.now
        if by_proxy:
            self.proxy_requests += 1
        if not self.is_operational or self.state != DeviceState.RUNNING:
            self.denied_requests.append((now, "pump not running"))
            return False
        if self.stopped_by_supervisor:
            self.denied_requests.append((now, "stopped by supervisor"))
            return False
        rx = self.effective_prescription
        if self._last_bolus_time is not None and now - self._last_bolus_time < rx.lockout_interval_s:
            self.denied_requests.append((now, "lockout"))
            return False
        if self.delivered_in_window(SECONDS_PER_HOUR) + rx.bolus_dose_mg > self.prescription.hourly_limit_mg:
            # The hourly limit check uses the *programmed* limit: the pump
            # enforces what it was told, even if the effective dose per bolus
            # is wrong, which is exactly how misprogramming defeats it.
            self.denied_requests.append((now, "hourly limit"))
            return False
        self._deliver_bolus(rx.bolus_dose_mg)
        return True

    def proxy_request(self, count: int = 1, **_ignored: Any) -> int:
        """Fault-injection hook: someone other than the patient presses the button."""
        delivered = 0
        for _ in range(int(count)):
            if self.request_bolus(by_proxy=True):
                delivered += 1
        return delivered

    def _deliver_bolus(self, dose_mg: float) -> None:
        now = self.now
        self._last_bolus_time = now
        self.delivered_boluses.append((now, dose_mg))
        self.patient.infuse_bolus(dose_mg)
        self._log_event("bolus_delivered", dose_mg)
        self.publish("dose_delivered", {"time": now, "dose_mg": dose_mg})

    def delivered_in_window(self, window_s: float) -> float:
        """Total bolus drug delivered in the trailing ``window_s`` seconds."""
        cutoff = self.now - window_s
        return sum(dose for time, dose in self.delivered_boluses if time >= cutoff)

    @property
    def total_delivered_mg(self) -> float:
        return sum(dose for _, dose in self.delivered_boluses)

    def _apply_basal_rate(self) -> None:
        rate = 0.0
        if self.state == DeviceState.RUNNING and not self.stopped_by_supervisor and not self.crashed:
            rate = self.effective_prescription.basal_rate_mg_per_hr / 60.0
        self.patient.set_infusion_rate(rate)

    # ----------------------------------------------------------- fault hooks
    def reprogram(self, rate_multiplier: float = 1.0, concentration_multiplier: float = 1.0,
                  hourly_limit_mg: Optional[float] = None, **_ignored: Any) -> None:
        """Fault-injection hook modelling misprogramming / wrong drug loading."""
        if rate_multiplier <= 0 or concentration_multiplier <= 0:
            raise ValueError("multipliers must be positive")
        new_limit = self.prescription.hourly_limit_mg if hourly_limit_mg is None else hourly_limit_mg
        self.prescription = replace(
            self.prescription,
            bolus_dose_mg=self.prescription.bolus_dose_mg * rate_multiplier,
            basal_rate_mg_per_hr=self.prescription.basal_rate_mg_per_hr * rate_multiplier,
            hourly_limit_mg=new_limit,
        )
        self._concentration_error *= concentration_multiplier
        self._log_event("misprogrammed", {
            "rate_multiplier": rate_multiplier,
            "concentration_multiplier": concentration_multiplier,
        })
        self._apply_basal_rate()

    def crash(self) -> None:
        super().crash()
        self.patient.set_infusion_rate(0.0)

    # -------------------------------------------------------------- commands
    def _command_stop(self, _parameters: Dict[str, Any]) -> bool:
        """Supervisor stop command, applied after the pump's processing delay."""
        self.after(self.command_delay_s, self._do_stop)
        return True

    def _do_stop(self) -> None:
        if self.crashed:
            return
        self.stopped_by_supervisor = True
        self.transition(DeviceState.PAUSED)
        self._apply_basal_rate()
        self._log_event("stopped_by_supervisor", True)

    def _command_resume(self, _parameters: Dict[str, Any]) -> bool:
        self.after(self.command_delay_s, self._do_resume)
        return True

    def _do_resume(self) -> None:
        if self.crashed:
            return
        self.stopped_by_supervisor = False
        self.transition(DeviceState.RUNNING)
        self._apply_basal_rate()
        self._log_event("resumed_by_supervisor", True)

    def _command_set_prescription(self, parameters: Dict[str, Any]) -> bool:
        prescription = parameters.get("prescription")
        if not isinstance(prescription, PCAPrescription):
            self.rejected_commands.append(("set_prescription", "missing prescription"))
            return False
        prescription.validate()
        self.prescription = prescription
        self.programmed_prescription = prescription
        self._apply_basal_rate()
        return True
