"""Hospital bed: the Class I device of the mixed-criticality scenario.

Raising or lowering the bed changes the height of the patient relative to the
arterial-line transducer, shifting the measured MAP without any physiological
change (Section III(l) of the paper).  When connected to the middleware the
bed publishes ``bed_height`` context events that a context-aware alarm system
can correlate with MAP steps to suppress false alarms.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.patient.model import PatientModel
from repro.sim.trace import TraceRecorder


class HospitalBed(MedicalDevice):
    """Adjustable-height hospital bed (FDA Class I)."""

    def __init__(
        self,
        device_id: str,
        patient: PatientModel,
        *,
        publish_context_events: bool = True,
        motion_duration_s: float = 10.0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="hospital_bed",
            risk_class="I",
            published_topics=("bed_height",),
            accepted_commands=("set_height",),
            capabilities=("bed_positioning", "context_events"),
        )
        super().__init__(descriptor, trace=trace)
        if motion_duration_s < 0:
            raise ValueError("motion_duration_s must be non-negative")
        self.patient = patient
        self.publish_context_events = publish_context_events
        self.motion_duration_s = motion_duration_s
        self.height_cm = 0.0
        self.moves = 0
        self._declare_signals("height_cm")
        self._declare_events("bed_move")
        self.register_command("set_height", self._command_set_height)

    def start(self) -> None:
        self.transition(DeviceState.RUNNING)

    def set_height(self, height_cm: float) -> None:
        """Move the bed (head height offset from calibration, in cm)."""
        if not self.is_operational:
            return
        self.moves += 1
        previous = self.height_cm
        self.height_cm = float(height_cm)
        self._log_event("bed_move", {"from_cm": previous, "to_cm": self.height_cm})
        # The patient/transducer offset changes when the motion completes.
        self.after(self.motion_duration_s, lambda: self._finish_move(previous))

    def _finish_move(self, previous_cm: float) -> None:
        self.patient.map_model.set_bed_height_offset(self.height_cm)
        if self.publish_context_events:
            self.publish(
                "bed_height",
                {
                    "height_cm": self.height_cm,
                    "previous_cm": previous_cm,
                    "time": self.now,
                },
            )
        self._record("height_cm", self.height_cm)

    def _command_set_height(self, parameters) -> bool:
        height = parameters.get("height_cm")
        if height is None:
            self.rejected_commands.append(("set_height", "missing height_cm"))
            return False
        self.set_height(float(height))
        return True
