"""Blood-pressure monitor publishing mean arterial pressure (MAP).

Used by the mixed-criticality bed scenario (Section III(l)): the monitor's
reading depends on transducer height relative to the patient, so a bed-height
change produces a step artefact in MAP that a trend-following alarm would
misread as sudden hypotension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.patient.model import PatientModel
from repro.sim.trace import TraceRecorder


@dataclass
class BloodPressureMonitorConfig:
    sample_period_s: float = 15.0

    def validate(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")


class BloodPressureMonitor(MedicalDevice):
    """Invasive arterial-line MAP monitor."""

    def __init__(
        self,
        device_id: str,
        patient: PatientModel,
        config: Optional[BloodPressureMonitorConfig] = None,
        *,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="bp_monitor",
            risk_class="II",
            published_topics=("map", "blood_pressure_status"),
            accepted_commands=("rezero",),
            capabilities=("map_monitoring",),
        )
        super().__init__(descriptor, trace=trace)
        self.config = config or BloodPressureMonitorConfig()
        self.config.validate()
        self.patient = patient
        self.readings_published = 0
        self._zero_offset_mmhg = 0.0
        self._declare_signals("map_reading")
        self._declare_events("rezeroed")
        self.register_command("rezero", self._command_rezero)

    def start(self) -> None:
        self.transition(DeviceState.RUNNING)
        self.sample_every(self.config.sample_period_s, self._sample)

    def _sample(self) -> None:
        if not self.is_operational:
            return
        reading = self.patient.map_model.measured_map_mmhg + self._zero_offset_mmhg
        self.readings_published += 1
        self.publish_reading("map", reading, record="map_reading")

    def _command_rezero(self, _parameters) -> bool:
        """Re-zero the transducer at the current bed height, removing the artefact."""
        self._zero_offset_mmhg = (
            self.patient.map_model.true_map_mmhg - self.patient.map_model.measured_map_mmhg
        )
        self._log_event("rezeroed", self._zero_offset_mmhg)
        return True
