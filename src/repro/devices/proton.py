"""Proton-therapy beam scheduling and emergency shutdown.

Section II(a) of the paper singles out proton therapy as one of the largest
and most timing-critical medical device systems: a single cyclotron beam is
switched between multiple treatment rooms, beam control has tight timing
tolerances, real-time patient-position imaging must interrupt delivery on
patient movement, and "interference between beam scheduling and beam
application" is an explicit hazard.  The simulation models:

* a :class:`ProtonTherapySystem` owning the single beam source,
* several :class:`TreatmentRoom` processes requesting beam slots for dose
  fractions (a fraction is a sequence of spot deliveries),
* patient-motion events detected by per-room imaging, which must trigger a
  beam cut-off for that room within a latency bound, and
* an emergency shutdown path whose latency is measured separately (the
  safety function analysed in Rae et al. [19]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.sim.kernel import Process
from repro.sim.trace import TraceRecorder


@dataclass
class BeamRequest:
    """A treatment room's request for one dose fraction."""

    room_id: str
    requested_at: float
    spots: int
    spot_duration_s: float
    priority: int = 0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    aborted: bool = False
    delivered_spots: int = 0

    @property
    def duration_s(self) -> float:
        return self.spots * self.spot_duration_s

    @property
    def waiting_time_s(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.requested_at

    @property
    def complete(self) -> bool:
        return self.completed_at is not None and not self.aborted


class ProtonTherapySystem(MedicalDevice):
    """The shared cyclotron beam source and its scheduler.

    Scheduling policy is round-robin over pending requests with priority
    override; the beam switches rooms only between fractions unless an
    emergency cut-off pre-empts delivery.  Switching the beam line between
    rooms takes ``switch_time_s``.
    """

    def __init__(
        self,
        device_id: str,
        *,
        switch_time_s: float = 20.0,
        emergency_shutdown_latency_s: float = 0.05,
        motion_cutoff_latency_s: float = 0.2,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="proton_therapy",
            risk_class="III",
            published_topics=("beam_status",),
            accepted_commands=("emergency_shutdown",),
            capabilities=("beam_delivery", "beam_scheduling", "emergency_shutdown"),
        )
        super().__init__(descriptor, trace=trace)
        if switch_time_s < 0:
            raise ValueError("switch_time_s must be non-negative")
        if emergency_shutdown_latency_s < 0 or motion_cutoff_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        self.switch_time_s = switch_time_s
        self.emergency_shutdown_latency_s = emergency_shutdown_latency_s
        self.motion_cutoff_latency_s = motion_cutoff_latency_s
        self.rooms: Dict[str, "TreatmentRoom"] = {}
        self.pending: List[BeamRequest] = []
        self.completed: List[BeamRequest] = []
        self.current: Optional[BeamRequest] = None
        self.current_room: Optional[str] = None
        self.shutdown = False
        self.shutdown_times: List[float] = []
        self.motion_cutoffs: List[float] = []
        self.beam_busy_s = 0.0
        self.switch_count = 0
        self._declare_events("request_submitted", "delivery_started",
                             "delivery_completed", "delivery_aborted",
                             "patient_motion", "emergency_shutdown")
        self.register_command("emergency_shutdown", lambda params: self.emergency_shutdown())

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        self.transition(DeviceState.RUNNING)

    def attach_room(self, room: "TreatmentRoom") -> None:
        self.rooms[room.room_id] = room
        room.system = self

    # ------------------------------------------------------------ scheduling
    def submit(self, request: BeamRequest) -> None:
        """A room submits a fraction request; it is queued until the beam frees."""
        if self.shutdown:
            request.aborted = True
            self.completed.append(request)
            return
        self.pending.append(request)
        self._log_event("request_submitted", request.room_id)
        if self.current is None:
            self._schedule_next()

    def _schedule_next(self) -> None:
        if self.shutdown or self.current is not None or not self.pending:
            return
        # Highest priority first, ties broken by arrival order.
        self.pending.sort(key=lambda r: (-r.priority, r.requested_at))
        request = self.pending.pop(0)
        switch = self.switch_time_s if request.room_id != self.current_room else 0.0
        if switch > 0:
            self.switch_count += 1
        self.current = request
        self.current_room = request.room_id
        self.after(switch, lambda: self._begin_delivery(request))

    def _begin_delivery(self, request: BeamRequest) -> None:
        if self.shutdown or request.aborted:
            self._finish(request)
            return
        request.started_at = self.now
        self._log_event("delivery_started", request.room_id)
        self._deliver_spot(request)

    def _deliver_spot(self, request: BeamRequest) -> None:
        if self.shutdown or request.aborted:
            self._finish(request)
            return
        if request.delivered_spots >= request.spots:
            request.completed_at = self.now
            self._log_event("delivery_completed", request.room_id)
            self._finish(request)
            return
        request.delivered_spots += 1
        self.beam_busy_s += request.spot_duration_s
        self.after(request.spot_duration_s, lambda: self._deliver_spot(request))

    def _finish(self, request: BeamRequest) -> None:
        self.completed.append(request)
        if self.current is request:
            self.current = None
        self._schedule_next()

    # -------------------------------------------------------------- safety
    def report_patient_motion(self, room_id: str) -> None:
        """Per-room imaging detected patient movement: cut the beam for that room."""
        self.motion_cutoffs.append(self.now)
        self._log_event("patient_motion", room_id)
        if self.current is not None and self.current.room_id == room_id:
            request = self.current
            self.after(self.motion_cutoff_latency_s, lambda: self._abort(request, reason="patient_motion"))

    def emergency_shutdown(self) -> bool:
        """Hard shutdown of the whole facility (the path analysed in [19])."""
        if self.shutdown:
            return True
        self.shutdown = True
        self.shutdown_times.append(self.now)
        self._log_event("emergency_shutdown", True)
        if self.current is not None:
            request = self.current
            self.after(self.emergency_shutdown_latency_s, lambda: self._abort(request, reason="emergency_shutdown"))
        # Abort everything still queued.
        for request in self.pending:
            request.aborted = True
            self.completed.append(request)
        self.pending.clear()
        self.transition(DeviceState.FAULT)
        return True

    def _abort(self, request: BeamRequest, reason: str) -> None:
        if request.completed_at is not None:
            return
        request.aborted = True
        self._log_event("delivery_aborted", {"room": request.room_id, "reason": reason})
        self._finish(request)

    # -------------------------------------------------------------- metrics
    def utilisation(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.beam_busy_s / elapsed_s)

    @property
    def completed_fractions(self) -> int:
        return sum(1 for request in self.completed if request.complete)

    @property
    def aborted_fractions(self) -> int:
        return sum(1 for request in self.completed if request.aborted)


class TreatmentRoom(Process):
    """A treatment room generating fraction requests and patient-motion events."""

    def __init__(
        self,
        room_id: str,
        *,
        fraction_spots: int = 40,
        spot_duration_s: float = 0.5,
        request_period_s: float = 600.0,
        fractions: int = 3,
        motion_times: Optional[List[float]] = None,
        priority: int = 0,
    ) -> None:
        super().__init__(name=f"room:{room_id}")
        if fraction_spots <= 0 or spot_duration_s <= 0 or request_period_s <= 0 or fractions < 0:
            raise ValueError("room parameters must be positive")
        self.room_id = room_id
        self.fraction_spots = fraction_spots
        self.spot_duration_s = spot_duration_s
        self.request_period_s = request_period_s
        self.fractions = fractions
        self.motion_times = list(motion_times or [])
        self.priority = priority
        self.system: Optional[ProtonTherapySystem] = None
        self.requests: List[BeamRequest] = []

    def start(self) -> None:
        for index in range(self.fractions):
            self.after(index * self.request_period_s, self._submit_request)
        for motion_time in self.motion_times:
            self.after(motion_time, self._report_motion)

    def _submit_request(self) -> None:
        if self.system is None:
            return
        request = BeamRequest(
            room_id=self.room_id,
            requested_at=self.now,
            spots=self.fraction_spots,
            spot_duration_s=self.spot_duration_s,
            priority=self.priority,
        )
        self.requests.append(request)
        self.system.submit(request)

    def _report_motion(self) -> None:
        if self.system is not None:
            self.system.report_patient_motion(self.room_id)
