"""Capnograph: respiratory rate and end-tidal CO2 monitoring.

Capnography is the most direct early indicator of opioid-induced respiratory
depression (respiratory rate falls before SpO2 does, because oxygen reserves
delay desaturation).  The smart-alarm and supervisor-ablation experiments use
the capnograph as a second, faster signal to fuse with pulse oximetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.patient.model import PatientModel
from repro.sim.trace import TraceRecorder

# Normal end-tidal CO2 is about 38 mmHg; hypoventilation raises it roughly in
# proportion to the drop in alveolar ventilation.
BASELINE_ETCO2_MMHG = 38.0
MAX_ETCO2_MMHG = 90.0


@dataclass
class CapnographConfig:
    sample_period_s: float = 5.0
    respiratory_rate_noise_sd: float = 0.5
    etco2_noise_sd: float = 1.0

    def validate(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.respiratory_rate_noise_sd < 0 or self.etco2_noise_sd < 0:
            raise ValueError("noise standard deviations must be non-negative")


class Capnograph(MedicalDevice):
    """Respiratory-rate / EtCO2 monitor."""

    def __init__(
        self,
        device_id: str,
        patient: PatientModel,
        config: Optional[CapnographConfig] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="capnograph",
            risk_class="II",
            published_topics=("respiratory_rate", "etco2"),
            accepted_commands=(),
            capabilities=("respiratory_monitoring",),
        )
        super().__init__(descriptor, trace=trace)
        self.config = config or CapnographConfig()
        self.config.validate()
        self.patient = patient
        self._rng = rng
        self._frozen = False
        self._frozen_rr: Optional[float] = None
        self.readings_published = 0
        self._declare_signals("respiratory_rate_reading", "etco2_reading")
        self._declare_events("sensor_frozen")

    def start(self) -> None:
        self.transition(DeviceState.RUNNING)
        self.sample_every(self.config.sample_period_s, self._sample)

    def _sample(self) -> None:
        if not self.is_operational:
            return
        vitals = self.patient.vital_signs
        rr = vitals.respiratory_rate_bpm
        if self._rng is not None:
            rr += float(self._rng.normal(0.0, self.config.respiratory_rate_noise_sd))
        rr = max(0.0, rr)

        baseline_rr = self.patient.parameters.baseline_respiratory_rate_bpm
        ventilation_fraction = min(1.0, rr / baseline_rr) if baseline_rr > 0 else 1.0
        etco2 = BASELINE_ETCO2_MMHG / max(ventilation_fraction, BASELINE_ETCO2_MMHG / MAX_ETCO2_MMHG)
        if self._rng is not None:
            etco2 += float(self._rng.normal(0.0, self.config.etco2_noise_sd))
        etco2 = float(np.clip(etco2, 0.0, MAX_ETCO2_MMHG))

        if self._frozen:
            if self._frozen_rr is None:
                self._frozen_rr = rr
            rr = self._frozen_rr

        self.readings_published += 1
        self.publish_reading("respiratory_rate", rr, record="respiratory_rate_reading")
        self.publish_reading("etco2", etco2, record="etco2_reading")

    # ----------------------------------------------------------- fault hooks
    def freeze(self) -> None:
        self._frozen = True
        self._frozen_rr = None
        self._log_event("sensor_frozen", True)

    def unfreeze(self) -> None:
        self._frozen = False
        self._frozen_rr = None
        self._log_event("sensor_frozen", False)
