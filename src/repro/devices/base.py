"""Base classes shared by all virtual medical devices.

A :class:`MedicalDevice` is a simulation process with

* an operational state machine (``off -> standby -> running -> fault``),
* a :class:`DeviceDescriptor` advertising its identity, FDA-style risk class,
  published data topics, and accepted commands (this is what the middleware
  registry uses for capability matching, Section III(k) of the paper), and
* optional publish/command plumbing once the device is attached to a
  middleware bus.

Devices are deliberately defensive: commands received in the wrong state are
rejected and counted rather than raising, because in the clinical scenarios
a mis-sequenced command is an event to analyse, not a programming error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.readings import Reading
from repro.sim.kernel import Process
from repro.sim.sampler import BatchedTraceWriter, PeriodicSampler
from repro.sim.trace import TraceRecorder


class DeviceState(enum.Enum):
    """Operational state of a device."""

    OFF = "off"
    STANDBY = "standby"
    RUNNING = "running"
    PAUSED = "paused"
    FAULT = "fault"


# Allowed operational-state transitions.  Anything not listed is rejected.
_ALLOWED_TRANSITIONS: Dict[DeviceState, Tuple[DeviceState, ...]] = {
    DeviceState.OFF: (DeviceState.STANDBY,),
    DeviceState.STANDBY: (DeviceState.RUNNING, DeviceState.OFF, DeviceState.FAULT),
    DeviceState.RUNNING: (DeviceState.PAUSED, DeviceState.STANDBY, DeviceState.FAULT, DeviceState.OFF),
    DeviceState.PAUSED: (DeviceState.RUNNING, DeviceState.STANDBY, DeviceState.FAULT, DeviceState.OFF),
    DeviceState.FAULT: (DeviceState.STANDBY, DeviceState.OFF),
}


@dataclass(frozen=True)
class DeviceDescriptor:
    """Self-description a device registers with the ICE middleware.

    device_id:
        Unique identifier on the medical-device network.
    device_type:
        Category string, e.g. ``"pca_pump"`` or ``"pulse_oximeter"``.
    manufacturer / model:
        Free-form provenance, used for interoperability diagnostics.
    risk_class:
        FDA device class ("I", "II", or "III"); the mixed-criticality
        scenario correlates low-risk device events with high-risk readings.
    published_topics:
        Data topics the device publishes (e.g. ``"spo2"``).
    accepted_commands:
        Commands the device accepts over the network (e.g. ``"stop"``).
        An empty tuple models the locked-down, data-only security posture
        discussed in Section III(m).
    capabilities:
        Additional capability flags used by workflow device matching.
    """

    device_id: str
    device_type: str
    manufacturer: str = "OpenMCPS"
    model: str = "sim-1"
    risk_class: str = "II"
    published_topics: Tuple[str, ...] = ()
    accepted_commands: Tuple[str, ...] = ()
    capabilities: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.risk_class not in ("I", "II", "III"):
            raise ValueError(f"risk_class must be 'I', 'II', or 'III', got {self.risk_class!r}")
        if not self.device_id:
            raise ValueError("device_id must be non-empty")

    def accepts(self, command: str) -> bool:
        return command in self.accepted_commands

    def publishes(self, topic: str) -> bool:
        return topic in self.published_topics


class MedicalDevice(Process):
    """Common behaviour of all simulated medical devices."""

    def __init__(
        self,
        descriptor: DeviceDescriptor,
        *,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(name=f"device:{descriptor.device_id}")
        self.descriptor = descriptor
        self.state = DeviceState.STANDBY
        self._publisher: Optional[Callable[[str, Any], None]] = None
        self._command_handlers: Dict[str, Callable[[Dict[str, Any]], Any]] = {}
        self.rejected_commands: List[Tuple[str, str]] = []
        self.state_history: List[Tuple[float, DeviceState]] = []
        self.crashed = False
        self._event_names: Dict[str, str] = {}
        self._declared_signals: List[str] = []
        self.trace = trace  # property: builds the batched writer

    @property
    def trace(self) -> Optional[TraceRecorder]:
        return self._trace

    @trace.setter
    def trace(self, trace: Optional[TraceRecorder]) -> None:
        # Fixed-rate sampling backbone: signal samples go through a batched
        # writer whose full names are precomputed at declare time, and event
        # names are cached — no per-sample f-strings anywhere.  Assigning
        # `trace` (at construction or later) rebuilds the writer so a trace
        # attached after __init__ records signals exactly like one passed in:
        # the old writer is flushed and unregistered from its recorder, and
        # any live sampling loops are re-pointed at the new writer.
        old_writer = getattr(self, "_writer", None)
        if old_writer is not None:
            old_writer.detach()
        self._trace = trace
        if trace is None:
            self._writer: Optional[BatchedTraceWriter] = None
        else:
            self._writer = BatchedTraceWriter(
                trace, prefix=self.descriptor.device_id, source=self.name)
            for signal in self._declared_signals:
                self._writer.declare(signal)
        for task in self._tasks:
            if isinstance(task, PeriodicSampler):
                task.writer = self._writer

    # --------------------------------------------------------------- states
    def transition(self, new_state: DeviceState) -> bool:
        """Attempt an operational state transition; returns success."""
        if new_state == self.state:
            return True
        allowed = _ALLOWED_TRANSITIONS[self.state]
        if new_state not in allowed:
            self._log_event("rejected_transition", f"{self.state.value}->{new_state.value}")
            return False
        self.state = new_state
        time = self._simulator.now if self._simulator is not None else 0.0
        self.state_history.append((time, new_state))
        self._log_event("state", new_state.value)
        return True

    @property
    def is_operational(self) -> bool:
        return self.state in (DeviceState.RUNNING, DeviceState.PAUSED) and not self.crashed

    # -------------------------------------------------------------- fault hooks
    def crash(self) -> None:
        """Fault-injection hook: the device stops responding entirely."""
        self.crashed = True
        self.transition(DeviceState.FAULT)
        self.cancel_all()

    def restart(self) -> None:
        """Fault-injection hook: bring a crashed device back to standby."""
        self.crashed = False
        if self.state == DeviceState.FAULT:
            self.transition(DeviceState.STANDBY)

    # ------------------------------------------------------------ middleware
    def attach_publisher(self, publisher: Callable[[str, Any], None]) -> None:
        """Give the device a function that publishes ``(topic, payload)``."""
        self._publisher = publisher

    def publish(self, topic: str, payload: Any) -> None:
        if self.crashed:
            return
        if not self.descriptor.publishes(topic):
            raise ValueError(
                f"device {self.descriptor.device_id!r} tried to publish undeclared topic {topic!r}"
            )
        if self._publisher is not None:
            self._publisher(topic, payload)

    def publish_reading(
        self,
        topic: str,
        value: Any,
        valid: bool = True,
        *,
        record: Optional[str] = None,
    ) -> None:
        """Publish one sensor sample on ``topic`` as a :class:`Reading`.

        The sample is stamped with the current simulated time.  ``record``
        optionally names a declared trace signal to record ``value`` under in
        the same call (the publish+record pair every sensor tick performs).
        """
        if self.crashed:
            return
        if not self.descriptor.publishes(topic):
            raise ValueError(
                f"device {self.descriptor.device_id!r} tried to publish undeclared topic {topic!r}"
            )
        now = self.now
        if self._publisher is not None:
            self._publisher(topic, Reading(value, valid, now))
        if record is not None and self._writer is not None:
            self._writer.record(now, record, value)

    def register_command(self, command: str, handler: Callable[[Dict[str, Any]], Any]) -> None:
        if not self.descriptor.accepts(command):
            raise ValueError(
                f"device {self.descriptor.device_id!r} registered handler for undeclared command {command!r}"
            )
        self._command_handlers[command] = handler

    def handle_command(self, command: str, parameters: Optional[Dict[str, Any]] = None) -> Any:
        """Process a network command; rejected commands are recorded, not raised."""
        parameters = parameters or {}
        if self.crashed:
            self.rejected_commands.append((command, "device crashed"))
            return None
        if not self.descriptor.accepts(command):
            self.rejected_commands.append((command, "command not accepted by descriptor"))
            self._log_event("rejected_command", command)
            return None
        handler = self._command_handlers.get(command)
        if handler is None:
            self.rejected_commands.append((command, "no handler registered"))
            self._log_event("rejected_command", command)
            return None
        return handler(parameters)

    # ---------------------------------------------------------------- tracing
    def sample_every(self, period: float, callback: Callable[[], None]) -> PeriodicSampler:
        """Run ``callback`` every ``period`` seconds on the sampling backbone.

        Same scheduling pattern as :meth:`Process.every` (so kernel event
        counts and ordering are unchanged), but the returned sampler also
        flushes this device's batched trace samples through ``record_many``.
        Registered with :meth:`cancel_all`, so :meth:`crash` stops it.
        """
        sampler = PeriodicSampler(
            self.simulator, period, callback,
            writer=self._writer, name=f"{self.name}:sampler",
        )
        sampler.start(self.simulator.now + period)
        self._tasks.append(sampler)
        return sampler

    def _declare_signals(self, *signals: str) -> None:
        """Precompute the full trace names of ``signals`` (attach-time cost)."""
        self._declared_signals.extend(signals)
        if self._writer is not None:
            for signal in signals:
                self._writer.declare(signal)

    def _declare_events(self, *kinds: str) -> None:
        """Pre-warm the event-name cache for the device's known event kinds."""
        device_id = self.descriptor.device_id
        for kind in kinds:
            self._event_names[kind] = f"{device_id}:{kind}"

    def _log_event(self, kind: str, value: Any) -> None:
        if self.trace is not None and self._simulator is not None:
            name = self._event_names.get(kind)
            if name is None:
                name = self._event_names[kind] = f"{self.descriptor.device_id}:{kind}"
            self.trace.event(self.now, name, value, source=self.name)

    def _record(self, signal: str, value: Any) -> None:
        writer = self._writer
        if writer is not None and self._simulator is not None:
            writer.record(self._simulator.now, signal, value)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.descriptor.device_id!r} {self.state.value}>"
