"""Virtual medical device library.

Every device the paper's clinical scenarios mention is modelled here as a
timed finite-state machine bound to the simulation kernel, with a network
interface (publish/command topics) compatible with the ICE-style middleware
in :mod:`repro.middleware`:

* :class:`~repro.devices.pca_pump.PCAPump` -- patient-controlled analgesia
  infusion pump with programmable limits, bolus/basal delivery, lockout, and
  a remote stop command (Figure 1, Section II(c)).
* :class:`~repro.devices.pulse_oximeter.PulseOximeter` -- SpO2 / heart-rate
  sensor with signal-processing delay, noise, probe-off artefacts.
* :class:`~repro.devices.capnograph.Capnograph` -- respiratory-rate / EtCO2
  monitor used by fused smart alarms.
* :class:`~repro.devices.bp_monitor.BloodPressureMonitor` -- MAP monitor for
  the mixed-criticality bed scenario (Section III(l)).
* :class:`~repro.devices.ventilator.Ventilator` and
  :class:`~repro.devices.xray.XRayMachine` -- the interoperability case study
  of Section II(b).
* :class:`~repro.devices.bed.HospitalBed` -- the Class I device whose height
  changes perturb MAP readings.
* :class:`~repro.devices.ecg.ECGMonitor` -- heart-rate source for multivariate
  alarm correlation.
* :class:`~repro.devices.proton.ProtonTherapySystem` -- beam scheduling and
  emergency shutdown (Section II(a)).
"""

from repro.devices.base import DeviceState, DeviceDescriptor, MedicalDevice
from repro.readings import Reading, coerce_reading
from repro.devices.pca_pump import PCAPump, PCAPrescription
from repro.devices.pulse_oximeter import PulseOximeter, PulseOximeterConfig
from repro.devices.capnograph import Capnograph, CapnographConfig
from repro.devices.bp_monitor import BloodPressureMonitor, BloodPressureMonitorConfig
from repro.devices.ventilator import Ventilator, VentilatorSettings
from repro.devices.xray import XRayMachine, XRayConfig
from repro.devices.bed import HospitalBed
from repro.devices.ecg import ECGMonitor, ECGConfig
from repro.devices.proton import BeamRequest, ProtonTherapySystem, TreatmentRoom

__all__ = [
    "DeviceState",
    "DeviceDescriptor",
    "MedicalDevice",
    "Reading",
    "coerce_reading",
    "PCAPump",
    "PCAPrescription",
    "PulseOximeter",
    "PulseOximeterConfig",
    "Capnograph",
    "CapnographConfig",
    "BloodPressureMonitor",
    "BloodPressureMonitorConfig",
    "Ventilator",
    "VentilatorSettings",
    "XRayMachine",
    "XRayConfig",
    "HospitalBed",
    "ECGMonitor",
    "ECGConfig",
    "BeamRequest",
    "ProtonTherapySystem",
    "TreatmentRoom",
]
