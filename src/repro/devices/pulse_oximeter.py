"""Pulse oximeter: SpO2 and heart-rate sensing with signal-processing delay.

Figure 1 of the paper identifies "Signal Processing time" as one of the delay
sources the supervisor must account for.  The simulated pulse oximeter
samples the patient's true vital signs periodically, applies a moving-average
signal-processing window (which both smooths noise and introduces the
reporting delay), adds measurement noise, and publishes ``spo2`` and
``heart_rate`` readings on the device network.  Probe-off and frozen-output
artefacts are available for the fault-injection and smart-alarm experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.patient.model import PatientModel
from repro.sim.trace import TraceRecorder


class _RollingMean:
    """Fixed-size chronological sample window with a cached numpy mean.

    Replaces the ``deque`` + ``np.mean(deque)`` pair: converting the deque
    to an array on every read dominated the oximeter's sample cost.  Samples
    live in a preallocated float64 array kept in chronological order (the
    shift is a C-level memmove over a handful of elements), so the mean is
    bit-identical to ``np.mean`` over the equivalent deque, and it is
    computed at most once per appended sample.
    """

    __slots__ = ("_buffer", "_count", "_mean")

    def __init__(self, size: int) -> None:
        self._buffer = np.empty(size, dtype=float)
        self._count = 0
        self._mean: Optional[float] = None

    def __len__(self) -> int:
        return self._count

    def append(self, value: float) -> None:
        buffer = self._buffer
        if self._count < buffer.shape[0]:
            buffer[self._count] = value
            self._count += 1
        else:
            buffer[:-1] = buffer[1:]
            buffer[-1] = value
        self._mean = None

    @property
    def mean(self) -> float:
        if self._count == 0:
            return float("nan")
        mean = self._mean
        if mean is None:
            mean = self._mean = float(self._buffer[:self._count].mean())
        return mean

    def clear(self) -> None:
        self._count = 0
        self._mean = None

    def bias(self, offset: float) -> None:
        """Add ``offset`` to every held sample (value-corruption faults)."""
        self._buffer[:self._count] += offset
        self._mean = None


@dataclass
class PulseOximeterConfig:
    """Sampling and artefact parameters.

    sample_period_s:
        How often the device samples the patient.
    averaging_window_samples:
        Moving-average window; the effective signal-processing delay is about
        half the window times the sample period.
    spo2_noise_sd / heart_rate_noise_sd:
        Gaussian measurement noise.
    """

    sample_period_s: float = 2.0
    averaging_window_samples: int = 4
    spo2_noise_sd: float = 0.6
    heart_rate_noise_sd: float = 1.5

    def validate(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.averaging_window_samples < 1:
            raise ValueError("averaging_window_samples must be >= 1")
        if self.spo2_noise_sd < 0 or self.heart_rate_noise_sd < 0:
            raise ValueError("noise standard deviations must be non-negative")

    @property
    def signal_processing_delay_s(self) -> float:
        """Approximate group delay introduced by the averaging window."""
        return 0.5 * (self.averaging_window_samples - 1) * self.sample_period_s


class PulseOximeter(MedicalDevice):
    """SpO2 / heart-rate monitor publishing to the device network."""

    def __init__(
        self,
        device_id: str,
        patient: PatientModel,
        config: Optional[PulseOximeterConfig] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="pulse_oximeter",
            risk_class="II",
            published_topics=("spo2", "heart_rate", "probe_status"),
            accepted_commands=(),
            capabilities=("spo2_monitoring", "heart_rate_monitoring"),
        )
        super().__init__(descriptor, trace=trace)
        self.config = config or PulseOximeterConfig()
        self.config.validate()
        self.patient = patient
        self._rng = rng
        self._spo2_window = _RollingMean(self.config.averaging_window_samples)
        self._hr_window = _RollingMean(self.config.averaging_window_samples)
        self._frozen = False
        self._probe_off = False
        self._frozen_values: Optional[Tuple[float, float]] = None
        self.readings_published = 0
        self._declare_signals("spo2_reading", "heart_rate_reading")
        self._declare_events("sensor_frozen", "probe_off")

    # --------------------------------------------------------------- process
    def start(self) -> None:
        self.transition(DeviceState.RUNNING)
        self.sample_every(self.config.sample_period_s, self._sample)

    def _sample(self) -> None:
        if not self.is_operational:
            return
        if self._probe_off:
            # A detached probe reads nonsense near zero; the smart-alarm
            # experiment relies on this signature being distinguishable from
            # true desaturation by its abruptness and by other vitals.
            self.publish("probe_status", {"attached": False})
            self.publish_reading("spo2", 0.0, valid=False, record="spo2_reading")
            self.publish_reading("heart_rate", 0.0, valid=False)
            return

        vitals = self.patient.vital_signs
        spo2 = vitals.spo2_percent
        heart_rate = vitals.heart_rate_bpm
        if self._rng is not None:
            spo2 += float(self._rng.normal(0.0, self.config.spo2_noise_sd))
            heart_rate += float(self._rng.normal(0.0, self.config.heart_rate_noise_sd))
        self._spo2_window.append(float(np.clip(spo2, 0.0, 100.0)))
        self._hr_window.append(max(0.0, heart_rate))

        if self._frozen:
            if self._frozen_values is None:
                self._frozen_values = (self.current_spo2, self.current_heart_rate)
            reported_spo2, reported_hr = self._frozen_values
        else:
            reported_spo2, reported_hr = self.current_spo2, self.current_heart_rate

        self.readings_published += 1
        self.publish_reading("spo2", reported_spo2, record="spo2_reading")
        self.publish_reading("heart_rate", reported_hr, record="heart_rate_reading")

    # ---------------------------------------------------------------- values
    @property
    def current_spo2(self) -> float:
        """Moving-average SpO2 as the device would display it."""
        return self._spo2_window.mean

    @property
    def current_heart_rate(self) -> float:
        return self._hr_window.mean

    # ----------------------------------------------------------- fault hooks
    def freeze(self) -> None:
        """Stuck-sensor fault: keep publishing the last value."""
        self._frozen = True
        self._frozen_values = None
        self._log_event("sensor_frozen", True)

    def unfreeze(self) -> None:
        self._frozen = False
        self._frozen_values = None
        self._log_event("sensor_frozen", False)

    def detach_probe(self) -> None:
        """Probe-off artefact (finger clip falls off)."""
        self._probe_off = True
        self._log_event("probe_off", True)

    def reattach_probe(self) -> None:
        self._probe_off = False
        self._spo2_window.clear()
        self._hr_window.clear()
        self._log_event("probe_off", False)

    def corrupt(self, spo2_offset: float = 0.0, heart_rate_offset: float = 0.0, **_ignored) -> None:
        """Value-corruption fault hook: bias the averaging windows."""
        self._spo2_window.bias(spo2_offset)
        self._hr_window.bias(heart_rate_offset)
