"""Portable X-ray machine for the ventilator-synchronisation case study.

Two coordination modes from Section II(b) of the paper are implemented:

* ``pause_restart``: the X-ray machine commands the ventilator to pause,
  takes the exposure, and commands a resume.  If the resume command is lost
  (or the operator forgets, in the manual variant), the patient is left
  apnoeic -- the fatal hazard reported in Lofsky [15].
* ``state_broadcast``: the X-ray machine listens to the ventilator's
  breathing-cycle state broadcasts and fires only when the remaining
  end-expiratory window, minus transmission delay, exceeds the exposure
  time.  The ventilator is never paused, so the hazard disappears, at the
  cost of tighter timing (images may be skipped if the window is too short).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.devices.ventilator import Ventilator
from repro.sim.trace import TraceRecorder

COORDINATION_MODES = ("manual", "pause_restart", "state_broadcast")


@dataclass
class XRayConfig:
    """Exposure timing and coordination parameters.

    exposure_time_s:
        Shutter-open duration; the chest must be still for this long.
    preparation_time_s:
        Time between the decision to shoot and the shutter opening.
    coordination_mode:
        One of :data:`COORDINATION_MODES`.
    assumed_transmission_delay_s:
        The delay margin the state-broadcast decision logic subtracts from
        the reported window (the "taking transmission delays into account"
        of the paper).
    """

    exposure_time_s: float = 0.3
    preparation_time_s: float = 0.4
    coordination_mode: str = "state_broadcast"
    assumed_transmission_delay_s: float = 0.2

    def validate(self) -> None:
        if self.exposure_time_s <= 0:
            raise ValueError("exposure_time_s must be positive")
        if self.preparation_time_s < 0:
            raise ValueError("preparation_time_s must be non-negative")
        if self.coordination_mode not in COORDINATION_MODES:
            raise ValueError(
                f"coordination_mode must be one of {COORDINATION_MODES}, got {self.coordination_mode!r}"
            )
        if self.assumed_transmission_delay_s < 0:
            raise ValueError("assumed_transmission_delay_s must be non-negative")


@dataclass
class XRayImage:
    """Record of one exposure attempt."""

    requested_at: float
    taken_at: Optional[float]
    blurred: bool
    mode: str


class XRayMachine(MedicalDevice):
    """Portable X-ray machine coordinating with a ventilator."""

    def __init__(
        self,
        device_id: str,
        config: Optional[XRayConfig] = None,
        *,
        ventilator: Optional[Ventilator] = None,
        send_ventilator_command: Optional[Callable[[str], bool]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="xray_machine",
            risk_class="II",
            published_topics=("image_taken", "exposure_status"),
            accepted_commands=("take_image",),
            capabilities=("imaging", "ventilator_sync"),
        )
        super().__init__(descriptor, trace=trace)
        self.config = config or XRayConfig()
        self.config.validate()
        self.ventilator = ventilator
        self._send_ventilator_command = send_ventilator_command
        self.images: List[XRayImage] = []
        self.skipped_windows = 0
        self.pending_request = False
        self._latest_vent_state: Optional[Dict[str, Any]] = None
        self._latest_vent_state_received_at: Optional[float] = None
        self._declare_events("image_requested", "image_taken",
                             "pause_failed", "resume_failed")
        self.register_command("take_image", lambda params: self.request_image())

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        self.transition(DeviceState.RUNNING)

    # --------------------------------------------------- ventilator listening
    def on_ventilator_state(self, payload: Dict[str, Any]) -> None:
        """Middleware callback delivering a ventilator ``breath_phase`` message."""
        self._latest_vent_state = dict(payload)
        self._latest_vent_state_received_at = self.now
        if self.pending_request and self.config.coordination_mode == "state_broadcast":
            self._try_state_broadcast_shot()

    # ----------------------------------------------------------- image requests
    def request_image(self) -> bool:
        """Clinician requests a chest X-ray.  Returns True if the workflow started."""
        if not self.is_operational:
            return False
        self.pending_request = True
        self._log_event("image_requested", self.config.coordination_mode)
        if self.config.coordination_mode == "manual":
            self._shoot_now(mode="manual")
            return True
        if self.config.coordination_mode == "pause_restart":
            return self._start_pause_restart()
        self._try_state_broadcast_shot()
        return True

    # ------------------------------------------------------------ manual mode
    def _shoot_now(self, mode: str) -> None:
        requested_at = self.now
        self.after(self.config.preparation_time_s, lambda: self._expose(requested_at, mode))

    def _expose(self, requested_at: float, mode: str) -> None:
        blurred = True
        if self.ventilator is not None:
            window = self.ventilator.remaining_imaging_window_s()
            blurred = not (
                self.ventilator.in_imaging_window() and window >= self.config.exposure_time_s
            )
        image = XRayImage(requested_at=requested_at, taken_at=self.now, blurred=blurred, mode=mode)
        self.images.append(image)
        self.pending_request = False
        self.publish("image_taken", {"time": self.now, "blurred": blurred, "mode": mode})
        self._log_event("image_taken", {"blurred": blurred, "mode": mode})

    # ----------------------------------------------------- pause/restart mode
    def _start_pause_restart(self) -> bool:
        paused = self._command_ventilator("pause")
        if not paused:
            self.pending_request = False
            self._log_event("pause_failed", True)
            return False
        # Wait for flow to settle, expose, then try to resume.
        settle = self.config.preparation_time_s + 0.5
        self.after(settle, self._pause_restart_expose)
        return True

    def _pause_restart_expose(self) -> None:
        requested_at = self.now
        self._expose(requested_at, mode="pause_restart")
        resumed = self._command_ventilator("resume")
        if not resumed:
            self._log_event("resume_failed", True)

    def _command_ventilator(self, command: str) -> bool:
        if self._send_ventilator_command is not None:
            return bool(self._send_ventilator_command(command))
        if self.ventilator is not None:
            if command == "pause":
                return self.ventilator.hold()
            if command == "resume":
                return self.ventilator.resume()
        return False

    # --------------------------------------------------- state-broadcast mode
    def _try_state_broadcast_shot(self) -> None:
        """Decide whether the current reported window is long enough to shoot."""
        if not self.pending_request or self._latest_vent_state is None:
            return
        payload = self._latest_vent_state
        phase = payload.get("phase")
        if phase != "end_expiratory_pause":
            return
        # Age of the information plus the assumed transmission margin.
        staleness = 0.0
        if self._latest_vent_state_received_at is not None and "time" in payload:
            staleness = max(0.0, self._latest_vent_state_received_at - float(payload["time"]))
        time_to_inhale = float(payload.get("time_to_next_inhale_s", 0.0))
        usable_window = (
            time_to_inhale
            - staleness
            - self.config.assumed_transmission_delay_s
            - self.config.preparation_time_s
        )
        if usable_window >= self.config.exposure_time_s:
            # Clear the request immediately so further state broadcasts that
            # arrive while the exposure is being prepared do not trigger
            # duplicate shots for the same clinical request.
            self.pending_request = False
            self._shoot_now(mode="state_broadcast")
        else:
            self.skipped_windows += 1

    # --------------------------------------------------------------- metrics
    @property
    def successful_images(self) -> int:
        return sum(1 for image in self.images if not image.blurred)

    @property
    def blurred_images(self) -> int:
        return sum(1 for image in self.images if image.blurred)
