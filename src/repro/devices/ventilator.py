"""Mechanical ventilator with breathing-cycle state broadcasting.

The X-ray/ventilator synchronisation case study (Section II(b) of the paper,
following Arney et al. [3] and Lofsky [15]) needs two behaviours from the
ventilator:

* *pause/restart mode*: an external device (the X-ray machine) can pause the
  ventilator and restart it; the hazard is that the restart never arrives.
* *state-broadcast mode*: the ventilator continuously transmits its internal
  breathing-cycle state so the X-ray machine can choose the end-of-exhalation
  window on its own; the ventilator is never paused, removing the hazard but
  tightening the timing constraints.

The breathing cycle is modelled as inhale -> exhale -> pause(end-expiratory)
phases with configurable durations.  Air-flow rate is positive during
inhalation, negative during exhalation, and (near) zero during the
end-expiratory pause -- the window in which a blur-free X-ray can be taken.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.devices.base import DeviceDescriptor, DeviceState, MedicalDevice
from repro.sim.trace import TraceRecorder


class BreathPhase(enum.Enum):
    INHALE = "inhale"
    EXHALE = "exhale"
    END_EXPIRATORY_PAUSE = "end_expiratory_pause"
    HELD = "held"  # ventilator paused by an external command


@dataclass
class VentilatorSettings:
    """Breathing-cycle timing.

    The defaults give a 5-second cycle (12 breaths/min): 1.5 s inhale,
    2.0 s exhale, 1.5 s end-expiratory pause.
    """

    inhale_duration_s: float = 1.5
    exhale_duration_s: float = 2.0
    pause_duration_s: float = 1.5
    tidal_volume_ml: float = 500.0
    max_safe_apnea_s: float = 60.0

    def validate(self) -> None:
        for name in ("inhale_duration_s", "exhale_duration_s", "pause_duration_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tidal_volume_ml <= 0:
            raise ValueError("tidal_volume_ml must be positive")
        if self.max_safe_apnea_s <= 0:
            raise ValueError("max_safe_apnea_s must be positive")

    @property
    def cycle_duration_s(self) -> float:
        return self.inhale_duration_s + self.exhale_duration_s + self.pause_duration_s

    @property
    def breaths_per_minute(self) -> float:
        return 60.0 / self.cycle_duration_s


class Ventilator(MedicalDevice):
    """Anaesthesia ventilator driving a fixed breathing cycle."""

    def __init__(
        self,
        device_id: str,
        settings: Optional[VentilatorSettings] = None,
        *,
        broadcast_state: bool = False,
        state_broadcast_period_s: float = 0.25,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        descriptor = DeviceDescriptor(
            device_id=device_id,
            device_type="ventilator",
            risk_class="III",
            published_topics=("breath_phase", "air_flow", "ventilation_status"),
            accepted_commands=("pause", "resume"),
            capabilities=("ventilation", "breath_state_broadcast"),
        )
        super().__init__(descriptor, trace=trace)
        self.settings = settings or VentilatorSettings()
        self.settings.validate()
        if state_broadcast_period_s <= 0:
            raise ValueError("state_broadcast_period_s must be positive")
        self.broadcast_state = broadcast_state
        self.state_broadcast_period_s = state_broadcast_period_s
        self.phase = BreathPhase.INHALE
        self.phase_started_at = 0.0
        self.held_since: Optional[float] = None
        self.breaths_delivered = 0
        self.hold_history: List[Tuple[float, Optional[float]]] = []  # (pause_time, resume_time)
        self._declare_signals("breath_phase")
        self._declare_events("held")
        self.register_command("pause", self._command_pause)
        self.register_command("resume", self._command_resume)

    # --------------------------------------------------------------- process
    def start(self) -> None:
        self.transition(DeviceState.RUNNING)
        self.phase = BreathPhase.INHALE
        self.phase_started_at = self.now
        self.after(self.settings.inhale_duration_s, self._next_phase)
        if self.broadcast_state:
            self.sample_every(self.state_broadcast_period_s, self._broadcast)

    def _next_phase(self) -> None:
        if self.crashed or self.phase == BreathPhase.HELD:
            return
        if self.phase == BreathPhase.INHALE:
            self._enter_phase(BreathPhase.EXHALE, self.settings.exhale_duration_s)
        elif self.phase == BreathPhase.EXHALE:
            self._enter_phase(BreathPhase.END_EXPIRATORY_PAUSE, self.settings.pause_duration_s)
        elif self.phase == BreathPhase.END_EXPIRATORY_PAUSE:
            self.breaths_delivered += 1
            self._enter_phase(BreathPhase.INHALE, self.settings.inhale_duration_s)

    def _enter_phase(self, phase: BreathPhase, duration: float) -> None:
        self.phase = phase
        self.phase_started_at = self.now
        self._record("breath_phase", phase.value)
        self.after(duration, self._next_phase)

    def _broadcast(self) -> None:
        if not self.is_operational:
            return
        self.publish(
            "breath_phase",
            {
                "phase": self.phase.value,
                "phase_started_at": self.phase_started_at,
                "time_to_next_inhale_s": self.time_to_next_inhalation(),
                "air_flow_lpm": self.air_flow_lpm(),
                "time": self.now,
            },
        )

    # ------------------------------------------------------------ physiology
    def air_flow_lpm(self) -> float:
        """Current air flow in litres per minute (signed; ~0 during the pause)."""
        if self.phase in (BreathPhase.END_EXPIRATORY_PAUSE, BreathPhase.HELD):
            return 0.0
        volume_l = self.settings.tidal_volume_ml / 1000.0
        if self.phase == BreathPhase.INHALE:
            return volume_l / (self.settings.inhale_duration_s / 60.0)
        return -volume_l / (self.settings.exhale_duration_s / 60.0)

    def in_imaging_window(self) -> bool:
        """True when flow is near zero and an X-ray would not be blurred."""
        return self.phase in (BreathPhase.END_EXPIRATORY_PAUSE, BreathPhase.HELD)

    def time_to_next_inhalation(self) -> float:
        """Seconds until the next inhalation starts (infinity while held)."""
        if self.phase == BreathPhase.HELD:
            return float("inf")
        elapsed = self.now - self.phase_started_at
        if self.phase == BreathPhase.INHALE:
            remaining = (
                (self.settings.inhale_duration_s - elapsed)
                + self.settings.exhale_duration_s
                + self.settings.pause_duration_s
            )
        elif self.phase == BreathPhase.EXHALE:
            remaining = (self.settings.exhale_duration_s - elapsed) + self.settings.pause_duration_s
        else:
            remaining = self.settings.pause_duration_s - elapsed
        return max(0.0, remaining)

    def remaining_imaging_window_s(self) -> float:
        """Seconds of zero-flow window left (0 if not currently in the window)."""
        if self.phase == BreathPhase.HELD:
            return float("inf")
        if self.phase != BreathPhase.END_EXPIRATORY_PAUSE:
            return 0.0
        return max(0.0, self.settings.pause_duration_s - (self.now - self.phase_started_at))

    # ----------------------------------------------------------- hold / resume
    def hold(self) -> bool:
        """Pause ventilation (external hold).  Returns True if now held."""
        if not self.is_operational:
            return False
        if self.phase == BreathPhase.HELD:
            return True
        self.phase = BreathPhase.HELD
        self.phase_started_at = self.now
        self.held_since = self.now
        self.hold_history.append((self.now, None))
        self.transition(DeviceState.PAUSED)
        self._log_event("held", True)
        return True

    def resume(self) -> bool:
        """Resume ventilation after a hold."""
        if self.crashed:
            return False
        if self.phase != BreathPhase.HELD:
            return True
        self.transition(DeviceState.RUNNING)
        if self.hold_history and self.hold_history[-1][1] is None:
            start, _ = self.hold_history[-1]
            self.hold_history[-1] = (start, self.now)
        self.held_since = None
        self._log_event("held", False)
        self._enter_phase(BreathPhase.INHALE, self.settings.inhale_duration_s)
        return True

    def apnea_duration(self) -> float:
        """How long the patient has currently been without ventilation."""
        if self.held_since is None:
            return 0.0
        return self.now - self.held_since

    def apnea_exceeded(self) -> bool:
        return self.apnea_duration() > self.settings.max_safe_apnea_s

    # --------------------------------------------------------------- commands
    def _command_pause(self, _parameters: Dict[str, Any]) -> bool:
        return self.hold()

    def _command_resume(self, _parameters: Dict[str, Any]) -> bool:
        return self.resume()
