"""PCA safety supervisor: the closed-loop controller of Figure 1.

The supervisor subscribes to pulse-oximeter SpO2 / heart-rate data (and, when
available, capnograph respiratory rate), evaluates a safety policy each
control step, and commands the PCA pump to stop when it detects early signs
of respiratory depression.  Three policies of increasing sophistication are
provided because the supervisor-policy ablation in experiment E1 compares
them:

* ``threshold`` -- stop when SpO2 falls below a fixed threshold (the
  baseline design in Arney et al. [4]).
* ``trend`` -- additionally stop when the SpO2 trend predicts crossing the
  threshold within a configurable horizon (earlier intervention).
* ``fused`` -- combine SpO2 with respiratory rate and heart rate so that the
  supervisor reacts to hypoventilation before desaturation and is robust to
  single-sensor artefacts.

The supervisor is *fail-safe with respect to data staleness*: if its QoS
monitor reports that a required topic has gone stale (communication failure,
sensor crash), it stops the pump rather than keep infusing blind.  It can
also resume the pump once the patient has recovered and data is fresh,
modelling the full control loop rather than a one-shot trip.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.middleware.qos import TopicQoS
from repro.middleware.supervisor_host import SupervisorApp
from repro.readings import Reading, coerce_reading
from repro.sim.channel import Message

POLICIES = ("threshold", "trend", "fused")


class SupervisorDecision(enum.Enum):
    """Outcome of one supervisor control step."""

    NO_ACTION = "no_action"
    STOP_PUMP = "stop_pump"
    RESUME_PUMP = "resume_pump"
    ALARM_ONLY = "alarm_only"


@dataclass
class SupervisorConfig:
    """Tuning of the PCA safety supervisor.

    spo2_stop_threshold:
        Stop the pump when measured SpO2 falls below this value.
    spo2_resume_threshold:
        Allow resumption only after SpO2 recovers above this (hysteresis).
    respiratory_rate_stop_threshold:
        Stop if respiratory rate (from a capnograph) falls below this.
    trend_horizon_s:
        For the trend policy, how far ahead to extrapolate SpO2.
    trend_window_samples:
        How many recent samples the trend estimate uses.
    data_staleness_limit_s:
        If required data is older than this, fail safe (stop the pump).
    policy:
        One of :data:`POLICIES`.
    resume_enabled / resume_hold_time_s:
        Whether and how quickly the supervisor resumes a recovered patient.
    """

    spo2_stop_threshold: float = 92.0
    spo2_resume_threshold: float = 95.0
    respiratory_rate_stop_threshold: float = 8.0
    heart_rate_low_threshold: float = 45.0
    trend_horizon_s: float = 120.0
    trend_window_samples: int = 20
    trend_arm_spo2: float = 96.0
    data_staleness_limit_s: float = 15.0
    startup_grace_s: float = 30.0
    policy: str = "fused"
    resume_enabled: bool = True
    resume_hold_time_s: float = 300.0
    use_capnograph: bool = True

    def validate(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if not 0 < self.spo2_stop_threshold < 100:
            raise ValueError("spo2_stop_threshold must be in (0, 100)")
        if self.spo2_resume_threshold < self.spo2_stop_threshold:
            raise ValueError("spo2_resume_threshold must be >= spo2_stop_threshold")
        if self.trend_window_samples < 2:
            raise ValueError("trend_window_samples must be >= 2")
        if self.data_staleness_limit_s <= 0:
            raise ValueError("data_staleness_limit_s must be positive")
        if self.startup_grace_s < 0:
            raise ValueError("startup_grace_s must be non-negative")
        if self.resume_hold_time_s < 0:
            raise ValueError("resume_hold_time_s must be non-negative")


@dataclass
class SupervisorEvent:
    time: float
    decision: SupervisorDecision
    reason: str
    values: Dict[str, float] = field(default_factory=dict)


class PCASafetySupervisor(SupervisorApp):
    """Closed-loop PCA safety supervisor application."""

    step_period_s = 2.0

    def __init__(
        self,
        app_id: str,
        pump_device_id: str,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        super().__init__(app_id)
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.pump_device_id = pump_device_id
        self.subscriptions = ("spo2", "heart_rate") + (
            ("respiratory_rate",) if self.config.use_capnograph else ()
        )
        self.qos_contracts = tuple(
            TopicQoS(topic=t, max_age_s=self.config.data_staleness_limit_s)
            for t in self.subscriptions
        )
        self._spo2_history: Deque[Tuple[float, float]] = deque(maxlen=self.config.trend_window_samples)
        self._latest: Dict[str, Tuple[float, float, bool]] = {}  # topic -> (time, value, valid)
        self.pump_stopped = False
        self.stop_count = 0
        self.resume_count = 0
        self.events: List[SupervisorEvent] = []
        self._stop_condition_cleared_at: Optional[float] = None
        self.first_stop_time: Optional[float] = None

    # ----------------------------------------------------------------- data
    def on_data(self, topic: str, payload: Any, message: Message) -> None:
        # Native Reading fast path: three slot loads instead of three
        # string-keyed dict lookups per sample, on every subscribed topic.
        if type(payload) is Reading:
            time, value, valid = payload.time, float(payload.value), payload.valid
        else:
            reading = coerce_reading(payload, default_time=message.sent_at)
            if reading is None:
                return
            time, value, valid = reading.time, float(reading.value), reading.valid
        self._latest[topic] = (time, value, valid)
        if topic == "spo2" and valid:
            self._spo2_history.append((time, value))

    def latest(self, topic: str) -> Optional[Tuple[float, float, bool]]:
        return self._latest.get(topic)

    # ----------------------------------------------------------------- step
    def step(self, now: float) -> None:
        decision, reason, values = self._evaluate(now)
        if decision == SupervisorDecision.STOP_PUMP and not self.pump_stopped:
            issued = self.send_command(self.pump_device_id, "stop")
            if issued:
                self.pump_stopped = True
                self.stop_count += 1
                if self.first_stop_time is None:
                    self.first_stop_time = now
            self.events.append(SupervisorEvent(now, decision, reason, values))
        elif decision == SupervisorDecision.RESUME_PUMP and self.pump_stopped:
            issued = self.send_command(self.pump_device_id, "resume")
            if issued:
                self.pump_stopped = False
                self.resume_count += 1
            self.events.append(SupervisorEvent(now, decision, reason, values))
        elif decision == SupervisorDecision.ALARM_ONLY:
            self.events.append(SupervisorEvent(now, decision, reason, values))

    # ------------------------------------------------------------ evaluation
    def _evaluate(self, now: float) -> Tuple[SupervisorDecision, str, Dict[str, float]]:
        config = self.config
        values: Dict[str, float] = {}

        # Fail safe on stale data for any required topic.  Topics that have
        # never delivered anything are tolerated during the startup grace
        # period so the supervisor does not trip before slow sensors (e.g. a
        # capnograph with a long sample period) produce their first reading.
        stale = []
        for topic in self.subscriptions:
            if self.qos.is_stale(topic):
                never_seen = topic not in self._latest
                if never_seen and now <= config.startup_grace_s:
                    continue
                stale.append(topic)
        if stale:
            if self.pump_stopped:
                return SupervisorDecision.NO_ACTION, "already stopped (stale data)", values
            return SupervisorDecision.STOP_PUMP, f"stale data on {', '.join(sorted(stale))}", values

        spo2 = self._value_if_valid("spo2")
        heart_rate = self._value_if_valid("heart_rate")
        respiratory_rate = self._value_if_valid("respiratory_rate")
        if spo2 is not None:
            values["spo2"] = spo2
        if heart_rate is not None:
            values["heart_rate"] = heart_rate
        if respiratory_rate is not None:
            values["respiratory_rate"] = respiratory_rate

        if spo2 is None:
            # No valid oximetry at all (probe off): treat like stale data,
            # subject to the same startup grace as never-seen topics.
            if "spo2" not in self._latest and now <= config.startup_grace_s:
                return SupervisorDecision.NO_ACTION, "waiting for first SpO2 reading", values
            if self.pump_stopped:
                return SupervisorDecision.NO_ACTION, "already stopped (no valid SpO2)", values
            return SupervisorDecision.STOP_PUMP, "no valid SpO2 reading", values

        danger, reason = self._danger(spo2, heart_rate, respiratory_rate, now)
        if danger:
            self._stop_condition_cleared_at = None
            if self.pump_stopped:
                return SupervisorDecision.NO_ACTION, "already stopped", values
            return SupervisorDecision.STOP_PUMP, reason, values

        # No danger: consider resuming a previously stopped pump.
        if self.pump_stopped and config.resume_enabled:
            if spo2 >= config.spo2_resume_threshold:
                if self._stop_condition_cleared_at is None:
                    self._stop_condition_cleared_at = now
                if now - self._stop_condition_cleared_at >= config.resume_hold_time_s:
                    self._stop_condition_cleared_at = None
                    return SupervisorDecision.RESUME_PUMP, "patient recovered", values
            else:
                self._stop_condition_cleared_at = None
        return SupervisorDecision.NO_ACTION, "within safe envelope", values

    def _danger(
        self,
        spo2: float,
        heart_rate: Optional[float],
        respiratory_rate: Optional[float],
        now: float,
    ) -> Tuple[bool, str]:
        config = self.config
        if spo2 < config.spo2_stop_threshold:
            return True, f"SpO2 {spo2:.1f} below threshold {config.spo2_stop_threshold:.1f}"
        if config.policy in ("trend", "fused") and spo2 < config.trend_arm_spo2:
            # The trend rule only arms once SpO2 shows real depression
            # (below trend_arm_spo2); otherwise noise-driven slopes
            # extrapolated over the horizon would trip the loop spuriously.
            predicted = self._predict_spo2(now + config.trend_horizon_s)
            if predicted is not None and predicted < config.spo2_stop_threshold:
                return True, (
                    f"SpO2 trend predicts {predicted:.1f} below threshold within "
                    f"{config.trend_horizon_s:.0f}s"
                )
        if config.policy == "fused":
            if respiratory_rate is not None and respiratory_rate < config.respiratory_rate_stop_threshold:
                return True, (
                    f"respiratory rate {respiratory_rate:.1f} below threshold "
                    f"{config.respiratory_rate_stop_threshold:.1f}"
                )
            if heart_rate is not None and heart_rate < config.heart_rate_low_threshold:
                return True, f"heart rate {heart_rate:.1f} critically low"
        return False, ""

    def _predict_spo2(self, at_time: float) -> Optional[float]:
        """Linear extrapolation of recent SpO2 samples to ``at_time``."""
        if len(self._spo2_history) < max(4, self.config.trend_window_samples // 2):
            return None
        times = [t for t, _ in self._spo2_history]
        values = [v for _, v in self._spo2_history]
        n = len(times)
        mean_t = sum(times) / n
        mean_v = sum(values) / n
        denom = sum((t - mean_t) ** 2 for t in times)
        if denom == 0:
            return None
        slope = sum((t - mean_t) * (v - mean_v) for t, v in zip(times, values)) / denom
        return mean_v + slope * (at_time - mean_t)

    def _value_if_valid(self, topic: str) -> Optional[float]:
        entry = self._latest.get(topic)
        if entry is None:
            return None
        _, value, valid = entry
        return value if valid else None
