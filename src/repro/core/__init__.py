"""Core closed-loop MCPS library: the paper's primary contribution.

This package assembles the substrates (simulation kernel, patient models,
virtual devices, ICE middleware) into the closed-loop medical device system
of Figure 1 and the safety arguments around it:

* :class:`~repro.core.pca.PCASafetySupervisor` -- the supervisor app that
  monitors pulse-oximeter (and optionally capnograph) data and stops the PCA
  pump on early signs of respiratory depression, with fail-safe behaviour on
  stale data.
* :class:`~repro.core.loop.ClosedLoopPCASystem` -- a builder that wires a
  patient, pump, sensors, bus, supervisor, and caregiver into a runnable
  scenario, in open-loop or closed-loop configuration.
* :mod:`~repro.core.delays` -- the control-loop delay budget analysis of
  Figure 1: given each delay source, how long between the physiological event
  and the pump actually stopping, and is that fast enough?
* :mod:`~repro.core.caregiver` -- stochastic caregiver/nurse response model
  (the "human in the loop" the paper contrasts the supervisor with).
"""

from repro.core.pca import PCASafetySupervisor, SupervisorConfig, SupervisorDecision
from repro.core.loop import ClosedLoopPCASystem, PCASystemConfig, PCARunResult
from repro.core.delays import DelayBudget, DelayComponent, loop_delay_budget
from repro.core.caregiver import Caregiver, CaregiverConfig

__all__ = [
    "PCASafetySupervisor",
    "SupervisorConfig",
    "SupervisorDecision",
    "ClosedLoopPCASystem",
    "PCASystemConfig",
    "PCARunResult",
    "DelayBudget",
    "DelayComponent",
    "loop_delay_budget",
    "Caregiver",
    "CaregiverConfig",
]
