"""Control-loop delay budget analysis (the timing annotations of Figure 1).

Figure 1 of the paper annotates the PCA control loop with its delay sources:
signal-processing time in the pulse oximeter, algorithm processing time in
the supervisor, network transmission delays, and the pump-stop delay.  The
supervisor "needs to account for" the sum of these delays: between the moment
the patient's physiology crosses the danger threshold and the moment the pump
actually stops, drug keeps flowing.

:func:`loop_delay_budget` composes the individual delay terms into a
worst-case end-to-end reaction time, and
:func:`max_additional_drug_during_reaction` converts that reaction time into
the additional drug a running infusion can deliver before the stop takes
effect -- the quantity a safe threshold choice must absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class DelayComponent:
    """One delay source in the control loop."""

    name: str
    nominal_s: float
    worst_case_s: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.nominal_s < 0:
            raise ValueError("nominal_s must be non-negative")
        if self.worst_case_s is not None and self.worst_case_s < self.nominal_s:
            raise ValueError("worst_case_s must be >= nominal_s")

    @property
    def worst(self) -> float:
        return self.nominal_s if self.worst_case_s is None else self.worst_case_s


@dataclass
class DelayBudget:
    """A named collection of delay components with derived totals."""

    components: List[DelayComponent] = field(default_factory=list)

    def add(self, component: DelayComponent) -> "DelayBudget":
        if any(existing.name == component.name for existing in self.components):
            raise ValueError(f"duplicate delay component {component.name!r}")
        self.components.append(component)
        return self

    def component(self, name: str) -> DelayComponent:
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError(f"no delay component named {name!r}")

    @property
    def nominal_total_s(self) -> float:
        return sum(component.nominal_s for component in self.components)

    @property
    def worst_case_total_s(self) -> float:
        return sum(component.worst for component in self.components)

    def dominant_component(self) -> Optional[DelayComponent]:
        if not self.components:
            return None
        return max(self.components, key=lambda component: component.worst)

    def as_rows(self) -> List[Dict[str, object]]:
        """Table rows for reporting (one per component plus a total row)."""
        rows: List[Dict[str, object]] = [
            {
                "component": component.name,
                "nominal_s": component.nominal_s,
                "worst_case_s": component.worst,
                "description": component.description,
            }
            for component in self.components
        ]
        rows.append(
            {
                "component": "TOTAL",
                "nominal_s": self.nominal_total_s,
                "worst_case_s": self.worst_case_total_s,
                "description": "end-to-end reaction time",
            }
        )
        return rows


def loop_delay_budget(
    *,
    sensor_sample_period_s: float,
    signal_processing_delay_s: float,
    uplink_latency_s: float,
    supervisor_step_period_s: float,
    algorithm_delay_s: float,
    command_latency_s: float,
    pump_stop_delay_s: float,
    retransmissions: int = 0,
) -> DelayBudget:
    """Assemble the Figure 1 delay budget for the closed-loop PCA system.

    The worst case assumes the physiological event happens just after a
    sensor sample and just after a supervisor step (so a full period of each
    is lost) and that commands need ``retransmissions`` extra attempts.
    """
    if retransmissions < 0:
        raise ValueError("retransmissions must be non-negative")
    budget = DelayBudget()
    budget.add(
        DelayComponent(
            name="sensor_sampling",
            nominal_s=sensor_sample_period_s / 2.0,
            worst_case_s=sensor_sample_period_s,
            description="time until the sensor next samples the patient",
        )
    )
    budget.add(
        DelayComponent(
            name="signal_processing",
            nominal_s=signal_processing_delay_s,
            description="pulse oximeter averaging / signal processing time",
        )
    )
    budget.add(
        DelayComponent(
            name="network_uplink",
            nominal_s=uplink_latency_s,
            worst_case_s=uplink_latency_s * (1 + retransmissions),
            description="sensor-to-supervisor transmission delay",
        )
    )
    budget.add(
        DelayComponent(
            name="supervisor_scheduling",
            nominal_s=supervisor_step_period_s / 2.0,
            worst_case_s=supervisor_step_period_s,
            description="time until the supervisor's next control step",
        )
    )
    budget.add(
        DelayComponent(
            name="algorithm_processing",
            nominal_s=algorithm_delay_s,
            description="supervisor algorithm processing time",
        )
    )
    budget.add(
        DelayComponent(
            name="command_transmission",
            nominal_s=command_latency_s,
            worst_case_s=command_latency_s * (1 + retransmissions),
            description="supervisor-to-pump command transmission delay",
        )
    )
    budget.add(
        DelayComponent(
            name="pump_stop",
            nominal_s=pump_stop_delay_s,
            description="pump command processing / mechanical stop delay",
        )
    )
    return budget


def max_additional_drug_during_reaction(
    budget: DelayBudget,
    *,
    basal_rate_mg_per_hr: float,
    pending_bolus_mg: float = 0.0,
    worst_case: bool = True,
) -> float:
    """Drug delivered between the danger onset and the pump actually stopping."""
    if basal_rate_mg_per_hr < 0 or pending_bolus_mg < 0:
        raise ValueError("drug amounts must be non-negative")
    reaction_s = budget.worst_case_total_s if worst_case else budget.nominal_total_s
    return basal_rate_mg_per_hr * reaction_s / 3600.0 + pending_bolus_mg


def required_threshold_margin(
    budget: DelayBudget,
    *,
    spo2_fall_rate_per_min: float,
    worst_case: bool = True,
) -> float:
    """How much SpO2 can fall during the reaction time.

    The supervisor's stop threshold must sit at least this far above the
    harm threshold for the stop to take effect before harm occurs, assuming
    SpO2 falls at ``spo2_fall_rate_per_min`` percentage points per minute.
    """
    if spo2_fall_rate_per_min < 0:
        raise ValueError("spo2_fall_rate_per_min must be non-negative")
    reaction_s = budget.worst_case_total_s if worst_case else budget.nominal_total_s
    return spo2_fall_rate_per_min * reaction_s / 60.0
