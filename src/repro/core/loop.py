"""Closed-loop PCA system builder: wires Figure 1 into a runnable scenario.

:class:`ClosedLoopPCASystem` assembles a patient model, PCA pump, pulse
oximeter (plus optional capnograph), the ICE device bus, the safety
supervisor, and a caregiver into one simulation, in one of three
configurations:

* ``open_loop`` -- pump with programmable limits only; the caregiver on
  periodic rounds is the only safety net (today's standard of care).
* ``open_loop_monitored`` -- adds threshold alarms routed to the caregiver
  but no automatic pump control (monitored but not closed-loop).
* ``closed_loop`` -- the paper's proposal: the supervisor stops the pump
  automatically (and the caregiver is still alarmed).

The result object captures the safety and efficacy metrics the experiments
report: respiratory-failure events, time below SpO2 thresholds, minimum
SpO2, total drug delivered, pain relief achieved, and supervisor reaction
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.caregiver import Caregiver, CaregiverConfig
from repro.core.pca import PCASafetySupervisor, SupervisorConfig
from repro.devices.capnograph import Capnograph
from repro.devices.pca_pump import PCAPrescription, PCAPump
from repro.devices.pulse_oximeter import PulseOximeter, PulseOximeterConfig
from repro.middleware.bus import BusConfig, DeviceBus
from repro.middleware.registry import DeviceRegistry
from repro.middleware.supervisor_host import SupervisorHost
from repro.obs.metrics import enabled as obs_enabled
from repro.obs.spans import tracer as obs_tracer
from repro.patient.model import PatientModel
from repro.patient.population import DEFAULT_PATIENT, PatientParameters
from repro.sim.faults import FaultInjector, FaultSpec
from repro.sim.kernel import Process, Simulator
from repro.sim.random import RandomStreams
from repro.sim.trace import TraceRecorder

MODES = ("open_loop", "open_loop_monitored", "closed_loop")


@dataclass
class PCASystemConfig:
    """Configuration of one PCA scenario run."""

    mode: str = "closed_loop"
    duration_s: float = 4.0 * 3600.0
    patient: PatientParameters = field(default_factory=lambda: DEFAULT_PATIENT)
    prescription: PCAPrescription = field(default_factory=PCAPrescription)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)
    caregiver: CaregiverConfig = field(default_factory=CaregiverConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    oximeter: PulseOximeterConfig = field(default_factory=PulseOximeterConfig)
    pump_command_delay_s: float = 1.0
    algorithm_delay_s: float = 0.1
    button_press_period_s: float = 420.0
    with_capnograph: bool = True
    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)
    alarm_spo2_threshold: float = 92.0

    def validate(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.button_press_period_s <= 0:
            raise ValueError("button_press_period_s must be positive")
        self.prescription.validate()
        self.supervisor.validate()
        self.caregiver.validate()


@dataclass
class PCARunResult:
    """Metrics of one PCA scenario run."""

    mode: str
    patient_id: str
    duration_s: float
    respiratory_failure_events: int
    time_in_respiratory_failure_s: float
    time_below_spo2_90_s: float
    min_spo2: float
    max_plasma_concentration: float
    total_drug_delivered_mg: float
    boluses_delivered: int
    boluses_denied: int
    final_pain_level: float
    mean_pain_level: float
    supervisor_stops: int
    supervisor_resumes: int
    supervisor_first_stop_time_s: Optional[float]
    caregiver_interventions: int
    caregiver_alarms_missed: int
    harmed: bool
    details: Dict[str, Any] = field(default_factory=dict)

    def as_record(self) -> Dict[str, Any]:
        """Flat, JSON-serialisable record of the run (campaign result schema)."""
        record = {
            "mode": self.mode,
            "patient_id": self.patient_id,
            "duration_s": self.duration_s,
            "respiratory_failure_events": self.respiratory_failure_events,
            "time_in_respiratory_failure_s": self.time_in_respiratory_failure_s,
            "time_below_spo2_90_s": self.time_below_spo2_90_s,
            "min_spo2": self.min_spo2,
            "max_plasma_concentration": self.max_plasma_concentration,
            "total_drug_delivered_mg": self.total_drug_delivered_mg,
            "boluses_delivered": self.boluses_delivered,
            "boluses_denied": self.boluses_denied,
            "final_pain_level": self.final_pain_level,
            "mean_pain_level": self.mean_pain_level,
            "supervisor_stops": self.supervisor_stops,
            "supervisor_resumes": self.supervisor_resumes,
            "supervisor_first_stop_time_s": self.supervisor_first_stop_time_s,
            "caregiver_interventions": self.caregiver_interventions,
            "caregiver_alarms_missed": self.caregiver_alarms_missed,
            "harmed": self.harmed,
        }
        return record


class _PatientButton(Process):
    """The patient's PCA demand button behaviour.

    A patient in pain presses the button roughly every ``period_s`` (with
    jitter); a sedated patient stops pressing -- the natural negative
    feedback that PCA-by-proxy and misprogramming defeat.
    """

    def __init__(self, pump: PCAPump, patient: PatientModel, period_s: float, rng: np.random.Generator) -> None:
        super().__init__(name=f"button:{patient.parameters.patient_id}")
        self.pump = pump
        self.patient = patient
        self.period_s = period_s
        self._rng = rng
        self.presses = 0

    def start(self) -> None:
        self.after(self._next_interval(), self._press)

    def _next_interval(self) -> float:
        return float(max(30.0, self._rng.normal(self.period_s, self.period_s * 0.25)))

    def _press(self) -> None:
        if self.patient.wants_bolus:
            self.presses += 1
            self.pump.request_bolus()
        self.after(self._next_interval(), self._press)


class _AlarmRelay(Process):
    """Threshold alarm that notifies the caregiver (open-loop-monitored mode)."""

    def __init__(self, oximeter: PulseOximeter, caregiver: Caregiver, threshold: float) -> None:
        super().__init__(name="alarm_relay")
        self.oximeter = oximeter
        self.caregiver = caregiver
        self.threshold = threshold
        self.alarms_raised = 0

    def start(self) -> None:
        self.every(10.0, self._check)

    def _check(self) -> None:
        spo2 = self.oximeter.current_spo2
        if not np.isnan(spo2) and spo2 < self.threshold:
            self.alarms_raised += 1
            self.caregiver.notify_alarm("low_spo2")


class ClosedLoopPCASystem:
    """Builds and runs one PCA scenario according to a :class:`PCASystemConfig`."""

    def __init__(self, config: Optional[PCASystemConfig] = None) -> None:
        self.config = config or PCASystemConfig()
        self.config.validate()
        self.streams = RandomStreams(self.config.seed)
        self.trace = TraceRecorder()
        self.simulator: Optional[Simulator] = None
        self.patient: Optional[PatientModel] = None
        self.pump: Optional[PCAPump] = None
        self.oximeter: Optional[PulseOximeter] = None
        self.capnograph: Optional[Capnograph] = None
        self.bus: Optional[DeviceBus] = None
        self.host: Optional[SupervisorHost] = None
        self.supervisor: Optional[PCASafetySupervisor] = None
        self.caregiver: Optional[Caregiver] = None
        self.registry = DeviceRegistry()
        self.fault_injector: Optional[FaultInjector] = None
        self.button: Optional[_PatientButton] = None
        self._alarm_relay: Optional[_AlarmRelay] = None
        self._built = False

    # ----------------------------------------------------------------- build
    def build(self) -> "ClosedLoopPCASystem":
        """Instantiate and wire every component; idempotent."""
        if self._built:
            return self
        config = self.config
        self.simulator = Simulator()
        patient_rng = self.streams.stream("patient")
        self.patient = PatientModel(config.patient, trace=self.trace, rng=patient_rng)
        self.simulator.register(self.patient)

        self.bus = DeviceBus(self.simulator, config.bus, rng=self.streams.stream("network"), trace=self.trace)

        self.pump = PCAPump(
            "pca-pump-1",
            self.patient,
            config.prescription,
            command_delay_s=config.pump_command_delay_s,
            trace=self.trace,
        )
        self.oximeter = PulseOximeter(
            "pulse-ox-1",
            self.patient,
            config.oximeter,
            rng=self.streams.stream("oximeter"),
            trace=self.trace,
        )
        devices = [self.pump, self.oximeter]
        if config.with_capnograph:
            self.capnograph = Capnograph(
                "capnograph-1", self.patient, rng=self.streams.stream("capnograph"), trace=self.trace
            )
            devices.append(self.capnograph)
        for device in devices:
            self.bus.attach_device(device)
            self.registry.register(device.descriptor)
            self.simulator.register(device)

        # The patient's own button presses.
        self.button = _PatientButton(
            self.pump, self.patient, config.button_press_period_s, self.streams.stream("button")
        )
        self.simulator.register(self.button)

        # Caregiver (all modes): responds to alarms by stopping the pump at the bedside.
        self.caregiver = Caregiver(
            "nurse-1",
            config.caregiver,
            on_intervention=self._caregiver_intervention,
            rng=self.streams.stream("caregiver"),
            trace=self.trace,
        )
        self.simulator.register(self.caregiver)

        if config.mode == "closed_loop":
            self.host = SupervisorHost(
                self.bus,
                algorithm_delay_s=config.algorithm_delay_s,
                trace=self.trace,
            )
            supervisor_config = replace(config.supervisor, use_capnograph=config.with_capnograph)
            self.supervisor = PCASafetySupervisor("pca-safety", "pca-pump-1", supervisor_config)
            self.host.attach_app(self.supervisor)
            self.simulator.register(self.host)
        if config.mode in ("open_loop_monitored", "closed_loop"):
            self._alarm_relay = _AlarmRelay(self.oximeter, self.caregiver, config.alarm_spo2_threshold)
            self.simulator.register(self._alarm_relay)

        # Fault injection.
        self.fault_injector = FaultInjector(self.simulator)
        for channel in self.bus.channels:
            self.fault_injector.register_channel(channel)
        self.fault_injector.register_device("pca-pump-1", self.pump)
        self.fault_injector.register_device("pulse-ox-1", self.oximeter)
        if self.capnograph is not None:
            self.fault_injector.register_device("capnograph-1", self.capnograph)
        self.fault_injector.extend(config.faults)
        self.fault_injector.arm()

        self._built = True
        return self

    def _caregiver_intervention(self, label: str) -> None:
        """Caregiver at the bedside: if the patient looks bad, stop the pump manually."""
        if self.patient is None or self.pump is None:
            return
        if label == "rounds":
            # On rounds the caregiver notices only frank respiratory failure.
            if self.patient.in_respiratory_failure:
                self.pump._do_stop()
        else:
            # Responding to an alarm: check SpO2 and stop if clearly low.
            if self.patient.vital_signs.spo2_percent < 92.0:
                self.pump._do_stop()

    # ------------------------------------------------------------------- run
    def run(self) -> PCARunResult:
        """Build (if needed), run the scenario, and compute the result metrics.

        With observability enabled the three phases are wrapped in sim-time
        spans (trace seeded by the scenario seed, clock =
        ``simulator.now``), so span ids and sim-clock endpoints are fully
        deterministic; metrics never influence the simulation itself.
        """
        if not obs_enabled():
            self.build()
            assert self.simulator is not None
            self.simulator.run(until=self.config.duration_s)
            return self._collect()
        context = obs_tracer().trace(f"pca:{self.config.seed}")
        clock = lambda: self.simulator.now if self.simulator is not None else 0.0
        with context.span("pca:run", clock=clock, clock_name="sim",
                          mode=self.config.mode, seed=self.config.seed):
            with context.span("pca:setup", clock=clock, clock_name="sim"):
                self.build()
            assert self.simulator is not None
            with context.span("pca:simulate", clock=clock, clock_name="sim"):
                self.simulator.run(until=self.config.duration_s)
            with context.span("pca:collect", clock=clock, clock_name="sim"):
                return self._collect()

    # ---------------------------------------------------------------- metrics
    def _collect(self) -> PCARunResult:
        assert self.patient is not None and self.pump is not None and self.caregiver is not None
        config = self.config
        prefix = config.patient.patient_id
        spo2_signal = f"{prefix}:spo2"
        pain_signal = f"{prefix}:pain"
        plasma_signal = f"{prefix}:plasma_mg_per_l"

        spo2_values = self.trace.values(spo2_signal)
        min_spo2 = float(spo2_values.min()) if spo2_values.size else float("nan")
        pain_values = self.trace.values(pain_signal)
        plasma_values = self.trace.values(plasma_signal)

        failure_events = self.trace.count_events(f"{prefix}:respiratory_failure")
        time_in_failure = self.trace.duration_below(spo2_signal, 85.0)
        time_below_90 = self.trace.duration_below(spo2_signal, 90.0)
        harmed = failure_events > 0 or time_below_90 > 300.0

        return PCARunResult(
            mode=config.mode,
            patient_id=prefix,
            duration_s=config.duration_s,
            respiratory_failure_events=failure_events,
            time_in_respiratory_failure_s=time_in_failure,
            time_below_spo2_90_s=time_below_90,
            min_spo2=min_spo2,
            max_plasma_concentration=float(plasma_values.max()) if plasma_values.size else 0.0,
            total_drug_delivered_mg=self.patient.total_drug_delivered_mg,
            boluses_delivered=len(self.pump.delivered_boluses),
            boluses_denied=len(self.pump.denied_requests),
            final_pain_level=float(pain_values[-1]) if pain_values.size else float("nan"),
            mean_pain_level=float(pain_values.mean()) if pain_values.size else float("nan"),
            supervisor_stops=self.supervisor.stop_count if self.supervisor else 0,
            supervisor_resumes=self.supervisor.resume_count if self.supervisor else 0,
            supervisor_first_stop_time_s=self.supervisor.first_stop_time if self.supervisor else None,
            caregiver_interventions=len(self.caregiver.interventions),
            caregiver_alarms_missed=self.caregiver.alarms_missed,
            harmed=harmed,
            details={
                "bus_stats": self.bus.stats() if self.bus else {},
                "proxy_requests": self.pump.proxy_requests,
                "button_presses": self.button.presses if self.button else 0,
            },
        )


def run_population(
    configs: List[PCASystemConfig],
) -> List[PCARunResult]:
    """Run a list of scenario configurations and return their results."""
    return [ClosedLoopPCASystem(config).run() for config in configs]
