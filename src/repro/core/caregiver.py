"""Stochastic caregiver (nurse/anaesthesiologist) response model.

Section II(c) of the paper motivates closed-loop supervision by the limits of
the "human in the loop": caregivers "may miss a critical warning sign",
"typically care for multiple patients at a time and can be distracted at a
wrong moment".  Section III(j) asks that models of caregiver behaviour,
including the likelihood of actions, be part of device safety analysis.

The :class:`Caregiver` process models a nurse who periodically rounds on the
patient and responds to alarms after a reaction delay, possibly missing an
alarm entirely when distracted or suffering alarm fatigue.  It is the
open-loop safety net against which the closed-loop supervisor is compared in
experiment E1, and the consumer of alarms in the smart-alarm experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.sim.kernel import Process
from repro.sim.trace import TraceRecorder


@dataclass
class CaregiverConfig:
    """Caregiver workload and responsiveness parameters.

    rounding_period_s:
        How often the caregiver checks on the patient unprompted.
    mean_response_delay_s / response_delay_sd_s:
        Log-normal-ish reaction time from alarm to arrival at the bedside.
    distraction_probability:
        Probability an individual alarm is missed outright (busy elsewhere).
    fatigue_half_life:
        Number of false alarms after which attention halves; models alarm
        fatigue (Section III(i)).  ``None`` disables fatigue.
    patients_assigned:
        Number of patients this caregiver covers; scales the response delay.
    """

    rounding_period_s: float = 1800.0
    mean_response_delay_s: float = 180.0
    response_delay_sd_s: float = 60.0
    distraction_probability: float = 0.15
    fatigue_half_life: Optional[float] = 20.0
    patients_assigned: int = 4

    def validate(self) -> None:
        if self.rounding_period_s <= 0:
            raise ValueError("rounding_period_s must be positive")
        if self.mean_response_delay_s < 0 or self.response_delay_sd_s < 0:
            raise ValueError("response delays must be non-negative")
        if not 0 <= self.distraction_probability <= 1:
            raise ValueError("distraction_probability must be in [0, 1]")
        if self.fatigue_half_life is not None and self.fatigue_half_life <= 0:
            raise ValueError("fatigue_half_life must be positive when set")
        if self.patients_assigned < 1:
            raise ValueError("patients_assigned must be >= 1")


class Caregiver(Process):
    """A nurse responding to alarms and doing periodic rounds."""

    def __init__(
        self,
        name: str,
        config: Optional[CaregiverConfig] = None,
        *,
        on_intervention: Optional[Callable[[str], None]] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        super().__init__(name=f"caregiver:{name}")
        self.config = config or CaregiverConfig()
        self.config.validate()
        self.caregiver_id = name
        self._on_intervention = on_intervention
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.trace = trace
        self.alarms_received = 0
        self.alarms_missed = 0
        self.false_alarms_seen = 0
        self.interventions: List[Tuple[float, str]] = []
        self.rounds_done = 0

    # --------------------------------------------------------------- process
    def start(self) -> None:
        self.every(self.config.rounding_period_s, self._do_rounds)

    def _do_rounds(self) -> None:
        self.rounds_done += 1
        if self.trace is not None:
            self.trace.event(self.now, f"{self.caregiver_id}:rounds", source=self.name)
        self._intervene("rounds")

    # ----------------------------------------------------------------- alarms
    @property
    def attention(self) -> float:
        """Current attention level in (0, 1], reduced by alarm fatigue."""
        if self.config.fatigue_half_life is None:
            return 1.0
        return float(0.5 ** (self.false_alarms_seen / self.config.fatigue_half_life))

    def notify_alarm(self, label: str, is_false_alarm: bool = False) -> bool:
        """Deliver an alarm to the caregiver; returns True if they will respond."""
        self.alarms_received += 1
        if is_false_alarm:
            self.false_alarms_seen += 1
        miss_probability = self.config.distraction_probability + (1.0 - self.attention) * 0.5
        miss_probability = min(0.95, miss_probability)
        if self._rng.random() < miss_probability:
            self.alarms_missed += 1
            if self.trace is not None:
                self.trace.event(self.now, f"{self.caregiver_id}:alarm_missed", label, source=self.name)
            return False
        delay = self._response_delay()
        self.after(delay, lambda: self._intervene(label))
        return True

    def _response_delay(self) -> float:
        scale = max(1.0, self.config.patients_assigned / 2.0)
        delay = self._rng.normal(self.config.mean_response_delay_s * scale, self.config.response_delay_sd_s)
        return float(max(10.0, delay))

    def _intervene(self, label: str) -> None:
        self.interventions.append((self.now, label))
        if self.trace is not None:
            self.trace.event(self.now, f"{self.caregiver_id}:intervention", label, source=self.name)
        if self._on_intervention is not None:
            self._on_intervention(label)

    # ------------------------------------------------------------- accounting
    @property
    def response_rate(self) -> float:
        if self.alarms_received == 0:
            return 1.0
        return 1.0 - self.alarms_missed / self.alarms_received
